"""The per-request cell graph.

Unfolding a request produces a coarse dataflow graph whose nodes are cell
invocations and whose edges say which cell output feeds which cell input
(§3.1's "cell graph").  Nodes carry their resolved input references —
either request-provided values or another node's named output — and, in
real-compute mode, their computed output rows.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.core.cell import CellType


class ValueInput:
    """A request-provided input value (e.g. a token id or an input vector)."""

    __slots__ = ("value",)

    def __init__(self, value: Any):
        self.value = value

    def __repr__(self) -> str:
        return f"ValueInput({self.value!r})"


class NodeOutput:
    """A reference to the named output of another node in the same graph."""

    __slots__ = ("node_id", "output")

    def __init__(self, node_id: int, output: str):
        self.node_id = node_id
        self.output = output

    def __repr__(self) -> str:
        return f"NodeOutput(node={self.node_id}, output={self.output!r})"


class CellNode:
    """One cell invocation in a request's cell graph."""

    __slots__ = (
        "node_id",
        "cell_type",
        "inputs",
        "outputs",
        "completed",
        "subgraph_id",
        "launched",
    )

    def __init__(self, node_id: int, cell_type: CellType, inputs: Dict[str, Any]):
        self.node_id = node_id
        self.cell_type = cell_type
        self.inputs = inputs  # input name -> ValueInput | NodeOutput
        self.outputs: Optional[Dict[str, Any]] = None
        self.completed = False
        self.launched = False
        self.subgraph_id: Optional[int] = None

    def predecessors(self) -> List[int]:
        """Node ids this node consumes outputs from (with duplicates removed,
        preserving first-seen order)."""
        seen = []
        for ref in self.inputs.values():
            if isinstance(ref, NodeOutput) and ref.node_id not in seen:
                seen.append(ref.node_id)
        return seen

    def __repr__(self) -> str:
        return f"<CellNode {self.node_id} type={self.cell_type.name!r}>"


class CellGraph:
    """A growable DAG of cell invocations for one request.

    Most models unfold statically at arrival; the dynamic Seq2Seq decoder
    extends the graph while the request runs (see
    :meth:`repro.core.request_processor.RequestProcessor.extend_request`).
    """

    def __init__(self):
        self._nodes: Dict[int, CellNode] = {}
        self._successors: Dict[int, List[int]] = {}
        self._next_id = 0
        # (node_id, output name) pairs whose values form the request result.
        self.result_refs: List[Tuple[int, str]] = []

    # -- construction -----------------------------------------------------

    def add_node(self, cell_type: CellType, inputs: Dict[str, Any]) -> CellNode:
        """Append a node; ``inputs`` maps every cell input name to a
        ValueInput or a NodeOutput referencing an *existing* node."""
        missing = [n for n in cell_type.input_names if n not in inputs]
        if missing:
            raise ValueError(
                f"node of type {cell_type.name!r} missing inputs: {missing}"
            )
        for ref in inputs.values():
            if isinstance(ref, NodeOutput):
                if ref.node_id not in self._nodes:
                    raise ValueError(f"input references unknown node {ref.node_id}")
                producer = self._nodes[ref.node_id]
                if ref.output not in producer.cell_type.output_names:
                    raise ValueError(
                        f"node {ref.node_id} ({producer.cell_type.name!r}) has "
                        f"no output {ref.output!r}"
                    )
            elif not isinstance(ref, ValueInput):
                raise TypeError(f"inputs must be ValueInput/NodeOutput, got {ref!r}")
        node = CellNode(self._next_id, cell_type, dict(inputs))
        self._nodes[node.node_id] = node
        self._successors[node.node_id] = []
        for pred in node.predecessors():
            self._successors[pred].append(node.node_id)
        self._next_id += 1
        return node

    def mark_result(self, node: CellNode, output: str) -> None:
        """Declare ``node.output`` as part of the request's final result."""
        if output not in node.cell_type.output_names:
            raise ValueError(
                f"node {node.node_id} has no output {output!r} "
                f"(has {node.cell_type.output_names})"
            )
        self.result_refs.append((node.node_id, output))

    # -- access ------------------------------------------------------------

    def node(self, node_id: int) -> CellNode:
        return self._nodes[node_id]

    def nodes(self) -> Iterator[CellNode]:
        return iter(self._nodes.values())

    def successors(self, node_id: int) -> Sequence[int]:
        return self._successors[node_id]

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._nodes

    # -- results -----------------------------------------------------------

    def collect_results(self) -> List[Any]:
        """Gather the declared result values (real-compute mode)."""
        results = []
        for node_id, output in self.result_refs:
            node = self._nodes[node_id]
            if node.outputs is None:
                raise RuntimeError(
                    f"result node {node_id} has not been executed"
                )
            results.append(node.outputs[output])
        return results

    def cell_type_census(self) -> Dict[str, int]:
        """Node counts per cell type, used by tests and the Fold baseline."""
        census: Dict[str, int] = {}
        for node in self._nodes.values():
            census[node.cell_type.name] = census.get(node.cell_type.name, 0) + 1
        return census

"""Cell-type registration for the serving engine.

A :class:`CellType` binds together everything the engine needs to know about
one batchable cell: its name (keying the cost model and the config), the
optional NumPy :class:`~repro.cells.base.Cell` that actually computes it in
real-compute mode, and its input/output names for graph wiring.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.cells.base import Cell


class CellType:
    """A registered, batchable cell type.

    In pure-simulation mode ``cell`` is None and only ``name``,
    ``input_names``/``output_names`` and ``num_operators`` matter (the cost
    model supplies timing).  In real-compute mode ``cell`` provides the
    batched forward function.
    """

    def __init__(
        self,
        name: str,
        input_names: Sequence[str],
        output_names: Sequence[str],
        cell: Optional[Cell] = None,
        num_operators: int = 1,
    ):
        if not name:
            raise ValueError("cell type name must be non-empty")
        self.name = name
        self.input_names = tuple(input_names)
        self.output_names = tuple(output_names)
        self.cell = cell
        self._num_operators = num_operators

    @classmethod
    def from_cell(cls, cell: Cell, name: Optional[str] = None) -> "CellType":
        """Register a NumPy cell as a servable cell type."""
        return cls(
            name or cell.name,
            cell.input_names,
            cell.output_names,
            cell=cell,
            num_operators=cell.num_operators(),
        )

    def num_operators(self) -> int:
        return self.cell.num_operators() if self.cell is not None else self._num_operators

    def compute(self, inputs: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
        """Batched forward (real-compute mode only)."""
        if self.cell is None:
            raise RuntimeError(
                f"cell type {self.name!r} has no compute body "
                "(registered for simulation only)"
            )
        return self.cell(inputs)

    def __repr__(self) -> str:
        mode = "compute" if self.cell is not None else "sim-only"
        return f"<CellType {self.name!r} ({mode})>"

"""BatchMaker server facade.

Wraps the manager pipeline behind the common :class:`InferenceServer`
interface so the load generator and the experiment harness can drive
BatchMaker and the baselines identically.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.core.config import BatchingConfig
from repro.core.manager import Manager
from repro.core.request import InferenceRequest
from repro.gpu.costmodel import CostModel
from repro.server import InferenceServer, ensure_loop
from repro.sim.events import EventLoop

if TYPE_CHECKING:  # avoids a circular import (models depend on core)
    from repro.models.base import Model


class BatchMakerServer(InferenceServer):
    """The cellular-batching inference server.

    Parameters
    ----------
    model:
        The servable model (cell types + unfold function).
    config:
        Batching configuration; default is max batch 512, MaxTasksToSubmit 5
        (the paper's defaults for the LSTM experiments).
    num_gpus:
        Number of workers/devices (the paper evaluates 1, 2 and 4).
    cost_model:
        Latency tables per cell type; defaults to the model's own calibrated
        tables.
    real_compute:
        When True, tasks actually run their NumPy cells and finished
        requests carry ``result`` values.
    fault_plan:
        Optional :class:`~repro.faults.FaultPlan` injecting kernel
        failures, stragglers and device losses (chaos testing).
    sla:
        Optional :class:`~repro.faults.SLAConfig`: default deadlines,
        retry/backoff policy and load shedding.  Both default to None,
        in which case the server is bit-identical to the pre-fault engine.
    policies:
        Optional :class:`~repro.policies.PolicyBundle` overriding the
        scheduling policies (queue priority, placement, batch formation).
        Defaults to the paper's Algorithm 1 derived from ``config``; an
        explicit bundle takes precedence over ``config.pinning`` /
        ``config.fast_path``.
    memory:
        Optional :class:`~repro.gpu.MemorySpec`: per-device byte capacity,
        weight residency and per-subgraph state footprint (DESIGN.md §15).
        None (the default) keeps the time-only device model bit-identical
        to the pre-memory engine.
    energy:
        Optional :class:`~repro.gpu.EnergySpec`: per-device joule
        accounting (idle + active power) and the DVFS governor over the
        spec's frequency states (DESIGN.md §17).  None (the default) keeps
        the energy-blind engine bit-identical.
    """

    def __init__(
        self,
        model: Model,
        config: Optional[BatchingConfig] = None,
        num_gpus: int = 1,
        cost_model: Optional[CostModel] = None,
        loop: Optional[EventLoop] = None,
        real_compute: bool = False,
        name: str = "BatchMaker",
        fault_plan=None,
        sla=None,
        policies=None,
        memory=None,
        energy=None,
    ):
        super().__init__(ensure_loop(loop), name)
        if cost_model is None:
            cost_model = model.default_cost_model()
        self.model = model
        self.config = config if config is not None else BatchingConfig.with_max_batch(512)
        self.manager = Manager(
            loop=self.loop,
            model=model,
            config=self.config,
            cost_model=cost_model,
            num_workers=num_gpus,
            real_compute=real_compute,
            on_request_finished=self._request_finished,
            fault_plan=fault_plan,
            sla=sla,
            on_request_timed_out=self._request_timed_out,
            on_request_rejected=self._request_rejected,
            policies=policies,
            memory=memory,
            energy=energy,
        )
        self.policies = self.manager.policies
        self._autotrace()

    def _apply_trace_scope(self, scope) -> None:
        """Push the scope into the pipeline: the manager records request
        lifecycle and task spans, the scheduler batch-formation/eviction."""
        self.manager.trace = scope
        self.manager.scheduler.trace = scope

    def _accept(self, request: InferenceRequest) -> None:
        self.manager.submit_request(request)

    # -- terminal-list appends (fed to the manager as callbacks) -------------
    # Kept as methods rather than bound ``list.append``s so a terminal
    # outcome also fires ``load_listener`` — the outstanding-count delta the
    # cluster's routing index subscribes to (DESIGN.md §13).

    def _request_finished(self, request: InferenceRequest) -> None:
        self.finished.append(request)
        if self.load_listener is not None:
            self.load_listener()

    def _request_timed_out(self, request: InferenceRequest) -> None:
        self.timed_out.append(request)
        if self.load_listener is not None:
            self.load_listener()

    def _request_rejected(self, request: InferenceRequest) -> None:
        self.rejected.append(request)
        if self.load_listener is not None:
            self.load_listener()

    # -- stats used by the experiment harness --------------------------------

    def stats(self):
        """A :class:`~repro.core.stats.ServerStats` snapshot (see its
        ``report()`` for a human-readable summary)."""
        from repro.core.stats import ServerStats

        return ServerStats(self)

    def tasks_submitted(self) -> int:
        return self.manager.scheduler.tasks_submitted

    def mean_batch_size(self) -> float:
        return self.manager.scheduler.mean_batch_size()

    def fault_counters(self):
        """The manager's :class:`~repro.metrics.FaultCounters`."""
        return self.manager.fault_counters

    def energy_joules(self) -> float:
        """Integrated fleet energy so far (0.0 without an energy spec)."""
        return self.manager.total_energy_joules()

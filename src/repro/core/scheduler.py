"""The batching scheduler — the paper's Algorithm 1.

One :class:`CellTypeQueue` per cell type holds released subgraphs in FIFO
order.  ``schedule(worker)`` picks a cell type by the paper's three-tier
criterion, then ``_batch`` forms and submits up to ``MaxTasksToSubmit``
batched tasks to that worker, pinning the touched subgraphs so that
dependent follow-up tasks stay on the same device (whose FIFO stream order
then satisfies their dependencies without waiting for completions).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.cell import CellType
from repro.core.config import BatchingConfig, CellTypeConfig
from repro.core.subgraph import Subgraph
from repro.core.task import BatchedTask


class CellTypeQueue:
    """Scheduler state for one cell type."""

    def __init__(self, cell_type: CellType, config: CellTypeConfig):
        self.cell_type = cell_type
        self.config = config
        self.subgraphs: "OrderedDict[int, Subgraph]" = OrderedDict()
        self.running_tasks = 0

    def num_ready_nodes(self) -> int:
        return sum(sg.ready_count() for sg in self.subgraphs.values())

    def add(self, sg: Subgraph) -> None:
        self.subgraphs[sg.subgraph_id] = sg

    def __repr__(self) -> str:
        return (
            f"<CellTypeQueue {self.cell_type.name!r} "
            f"subgraphs={len(self.subgraphs)} running={self.running_tasks}>"
        )


class Scheduler:
    """Forms batched tasks and assigns them to workers (paper Algorithm 1)."""

    def __init__(
        self,
        config: BatchingConfig,
        submit: Callable[[BatchedTask, "object"], None],
    ):
        self.config = config
        self._submit = submit
        self._queues: Dict[str, CellTypeQueue] = {}
        self._next_task_id = 0
        self.tasks_submitted = 0
        # Histogram of submitted batch sizes, for the evaluation's
        # "effective batch size" analysis.
        self.batch_size_counts: Dict[int, int] = {}

    # -- registration -------------------------------------------------------

    def register_cell_type(self, cell_type: CellType) -> None:
        if cell_type.name in self._queues:
            raise ValueError(f"cell type {cell_type.name!r} registered twice")
        self._queues[cell_type.name] = CellTypeQueue(
            cell_type, self.config.for_cell(cell_type.name)
        )

    def add_subgraph(self, sg: Subgraph) -> None:
        """Accept a released subgraph into its cell type's queue."""
        if sg.cell_type_name not in self._queues:
            raise KeyError(
                f"subgraph of unregistered cell type {sg.cell_type_name!r}"
            )
        sg.optimistic = self.config.pinning
        self._queues[sg.cell_type_name].add(sg)

    # -- Algorithm 1 ----------------------------------------------------------

    def schedule(self, worker) -> int:
        """Pick a cell type for ``worker`` and submit batched tasks.

        Selection order (Algorithm 1, lines 5-10): (a) cell types with at
        least a full maximum batch of ready nodes; else (b) cell types with
        ready nodes and no running tasks; else (c) any cell type with ready
        nodes.  Ties break by priority, then by name for determinism.
        Returns the number of tasks submitted.
        """
        queues = list(self._queues.values())
        candidates = [
            q for q in queues if q.num_ready_nodes() >= q.config.max_batch
        ]
        if not candidates:
            candidates = [
                q
                for q in queues
                if q.running_tasks == 0 and q.num_ready_nodes() > 0
            ]
        if not candidates:
            candidates = [q for q in queues if q.num_ready_nodes() > 0]
        if not candidates:
            return 0
        chosen = max(
            candidates, key=lambda q: (q.config.priority, q.cell_type.name)
        )
        return self._batch(chosen, worker)

    def _batch(self, queue: CellTypeQueue, worker) -> int:
        """Algorithm 1's ``Batch``: submit up to MaxTasksToSubmit tasks."""
        num_tasks = 0
        while num_tasks < self.config.max_tasks_to_submit:
            plan = self._form_batched_task(queue, worker)
            batch_size = sum(count for _, count in plan)
            if batch_size == 0:
                break
            if batch_size >= queue.config.min_batch or num_tasks == 0:
                self._commit(queue, worker, plan)
                num_tasks += 1
            else:
                break
        return num_tasks

    def _form_batched_task(
        self, queue: CellTypeQueue, worker
    ) -> List[Tuple[Subgraph, int]]:
        """Algorithm 1's ``FormBatchedTask``: plan (without committing) how
        many ready nodes to take from each eligible subgraph, scanning the
        queue in FIFO order until the maximum batch size is reached."""
        plan: List[Tuple[Subgraph, int]] = []
        budget = queue.config.max_batch
        for sg in queue.subgraphs.values():
            if budget == 0:
                break
            if sg.pinned is not None and sg.pinned != worker.worker_id:
                continue
            take = min(sg.ready_count(), budget)
            if take > 0:
                plan.append((sg, take))
                budget -= take
        return plan

    def _commit(
        self,
        queue: CellTypeQueue,
        worker,
        plan: List[Tuple[Subgraph, int]],
    ) -> None:
        """Materialise a planned batch: pop the ready nodes, build the task,
        pin subgraphs, update (optimistic) dependencies, and submit."""
        entries = []
        for sg, count in plan:
            node_ids = sg.take_ready(count)
            if len(node_ids) != count:
                raise RuntimeError(
                    f"subgraph {sg.subgraph_id}: planned {count} nodes but "
                    f"only {len(node_ids)} were ready"
                )
            for nid in node_ids:
                entries.append((sg, sg.graph.node(nid)))
            if self.config.pinning:
                sg.pin(worker.worker_id)
            else:
                sg.inflight += 1
            sg.mark_submitted(node_ids)
            if sg.exhausted():
                queue.subgraphs.pop(sg.subgraph_id, None)
        task = BatchedTask(self._next_task_id, queue.cell_type, entries)
        self._next_task_id += 1
        queue.running_tasks += 1
        self.tasks_submitted += 1
        size = task.batch_size
        self.batch_size_counts[size] = self.batch_size_counts.get(size, 0) + 1
        self._submit(task, worker)

    # -- completion ---------------------------------------------------------

    def task_completed(self, task: BatchedTask) -> None:
        queue = self._queues[task.cell_type.name]
        queue.running_tasks -= 1
        if queue.running_tasks < 0:
            raise RuntimeError(
                f"cell type {task.cell_type.name!r}: running task underflow"
            )

    # -- introspection --------------------------------------------------------

    def total_ready_nodes(self) -> int:
        return sum(q.num_ready_nodes() for q in self._queues.values())

    def queue_for(self, cell_name: str) -> CellTypeQueue:
        return self._queues[cell_name]

    def mean_batch_size(self) -> float:
        total = sum(b * c for b, c in self.batch_size_counts.items())
        count = sum(self.batch_size_counts.values())
        return total / count if count else 0.0

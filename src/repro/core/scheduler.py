"""The batching scheduler — the paper's Algorithm 1.

One :class:`CellTypeQueue` per cell type holds released subgraphs in FIFO
order.  ``schedule(worker)`` picks a cell type via the bundle's
:class:`~repro.policies.QueuePriorityPolicy` (the paper's three-tier
criterion by default), then ``_batch`` forms (via the bundle's
:class:`~repro.policies.BatchFormationPolicy`) and submits up to
``MaxTasksToSubmit`` batched tasks to that worker, binding the touched
subgraphs through the :class:`~repro.policies.PlacementPolicy` — pinned by
default, so dependent follow-up tasks stay on the same device (whose FIFO
stream order then satisfies their dependencies without waiting for
completions).

Hot-path complexity
-------------------
The scheduling decision itself must be cheap relative to a kernel launch
(the whole point of fine-grained batching), so the queue keeps its state
incrementally instead of rescanning:

* ``num_ready_nodes()`` is a counter read.  Subgraphs report ready-count
  deltas to their owning queue (``on_ready_delta``) whenever nodes are
  taken, submitted, or completed.
* ``_form_batched_task`` walks *eligible* subgraphs only — those with ready
  nodes that are unpinned or pinned to the requesting worker — via lazily
  maintained min-heaps keyed by arrival order, so the scan order is
  bit-identical to the original full-queue FIFO scan.

The original O(queue) scans are retained as the brute-force reference
(``BatchingConfig(fast_path=False)``); the equivalence test in
``tests/test_scheduler_equivalence.py`` holds the two bit-identical.
"""

from __future__ import annotations

import heapq
from collections import Counter, OrderedDict
from typing import Callable, Dict, List, Optional, Tuple

try:  # numpy backs the vectorized queue-selection arrays; optional
    import numpy as _np
except ImportError:  # pragma: no cover - the toolchain ships numpy
    _np = None

from repro.core.cell import CellType
from repro.core.config import BatchingConfig, CellTypeConfig
from repro.core.subgraph import Subgraph
from repro.core.task import BatchedTask
from repro.policies import PolicyBundle
from repro.policies.defaults import PaperBatchFormation
from repro.trace import events as trace_events


class QueueArrays:
    """NumPy mirrors of the per-queue state the tier-selection scan reads.

    One array slot per registered cell-type queue: ready-node totals,
    running-task counts, max batch sizes, and the queues' (priority, name)
    descending order precomputed as an index vector.  The scheduler keeps
    the ``ready``/``running`` entries exact at every mutation (the same
    counters the scalar scan reads), so the vectorized three-tier selection
    in :class:`~repro.policies.defaults.PaperQueuePriority` is a pure
    re-expression of the scalar loop — same winner, every time.

    Only built for fast-path schedulers with at least two queues; a single
    LSTM-style queue gains nothing from array dispatch.
    """

    __slots__ = ("queues", "ready", "running", "max_batch", "order")

    def __init__(self, queues: Tuple["CellTypeQueue", ...]):
        self.queues = queues
        n = len(queues)
        self.ready = _np.zeros(n, dtype=_np.int64)
        self.running = _np.zeros(n, dtype=_np.int64)
        self.max_batch = _np.array(
            [q.config.max_batch for q in queues], dtype=_np.int64
        )
        # Slot indices sorted by (priority, name) descending: the scalar
        # tie-break ``max(..., key=(priority, name))`` becomes "first
        # eligible slot in this order".
        self.order = _np.array(
            sorted(
                range(n),
                key=lambda i: (
                    queues[i].config.priority,
                    queues[i].cell_type.name,
                ),
                reverse=True,
            ),
            dtype=_np.int64,
        )
        for slot, queue in enumerate(queues):
            queue.slot = slot
            queue.arrays = self
            self.ready[slot] = queue._ready_total
            self.running[slot] = queue.running_tasks


class CellTypeQueue:
    """Scheduler state for one cell type.

    ``subgraphs`` is the authoritative FIFO (insertion-ordered) of queued
    subgraphs.  On top of it the queue maintains:

    * ``_ready_total`` — sum of ``ready_count()`` over queued subgraphs,
      updated by deltas from :meth:`on_ready_delta`.
    * ``_heaps`` — one lazy min-heap of ``(queue_seq, subgraph)`` entries
      per *bucket* (``None`` for unpinned, a worker id for pinned), holding
      every subgraph that may have ready nodes in that bucket.  Entries are
      never deleted eagerly; staleness is detected when popped by checking
      the subgraph's live state.  ``_heap_entries`` counts how many entries
      each subgraph currently has in each bucket's heap so that state
      transitions never push duplicates.
    """

    def __init__(
        self, cell_type: CellType, config: CellTypeConfig, fast_path: bool = True
    ):
        self.cell_type = cell_type
        self.config = config
        self.fast_path = fast_path
        self.subgraphs: "OrderedDict[int, Subgraph]" = OrderedDict()
        self.running_tasks = 0
        self._ready_total = 0
        # Vectorized-selection mirror (set by QueueArrays when the owning
        # scheduler builds one); every _ready_total / running_tasks change
        # below is reflected into the arrays so they never go stale.
        self.arrays: Optional[QueueArrays] = None
        self.slot = -1
        self._next_seq = 0
        self._heaps: Dict[Optional[int], List[Tuple[int, Subgraph]]] = {}
        self._heap_entries: Dict[Tuple[int, Optional[int]], int] = {}

    # -- ready-node accounting ---------------------------------------------

    def num_ready_nodes(self) -> int:
        if self.fast_path:
            return self._ready_total
        return self.recount_ready_nodes()

    def recount_ready_nodes(self) -> int:
        """Brute-force reference: full rescan of the queue."""
        return sum(sg.ready_count() for sg in self.subgraphs.values())

    def add(self, sg: Subgraph) -> None:
        sg.owner = self
        sg.queue_seq = self._next_seq
        self._next_seq += 1
        self.subgraphs[sg.subgraph_id] = sg
        self._ready_total += sg.ready_count()
        if self.arrays is not None:
            self.arrays.ready[self.slot] = self._ready_total
        if sg.ready_count() > 0:
            self._register(sg)

    def remove(self, sg: Subgraph) -> None:
        """Drop an exhausted subgraph (no nodes left to submit)."""
        self.subgraphs.pop(sg.subgraph_id, None)
        self._ready_total -= sg.ready_count()
        if self.arrays is not None:
            self.arrays.ready[self.slot] = self._ready_total
        sg.owner = None

    # -- notifications from Subgraph -----------------------------------------

    def on_ready_delta(self, sg: Subgraph, delta: int) -> None:
        """``sg``'s ready count changed by ``delta`` while queued here."""
        self._ready_total += delta
        if self.arrays is not None:
            self.arrays.ready[self.slot] = self._ready_total
        if delta > 0 and sg.ready_count() > 0:
            self._register(sg)
        # delta < 0 (or ready now 0): the heap entry goes stale and is
        # discarded lazily when popped.

    def on_pin_changed(self, sg: Subgraph) -> None:
        """``sg`` was pinned or unpinned: its eligibility bucket moved."""
        if sg.ready_count() > 0:
            self._register(sg)
        # The entry under the previous bucket is now stale; lazy cleanup.

    def _register(self, sg: Subgraph) -> None:
        """Ensure ``sg`` has an entry in its current bucket's heap."""
        bucket = sg.pinned
        key = (sg.subgraph_id, bucket)
        if self._heap_entries.get(key, 0) == 0:
            heapq.heappush(
                self._heaps.setdefault(bucket, []), (sg.queue_seq, sg)
            )
            self._heap_entries[key] = 1

    def _pop_entry(self, bucket: Optional[int]) -> Optional[Subgraph]:
        """Pop the heap entry for ``bucket``; caller validates liveness."""
        heap = self._heaps.get(bucket)
        if not heap:
            return None
        _, sg = heapq.heappop(heap)
        key = (sg.subgraph_id, bucket)
        count = self._heap_entries.get(key, 0) - 1
        if count > 0:
            self._heap_entries[key] = count
        else:
            self._heap_entries.pop(key, None)
        return sg

    def _entry_live(self, sg: Subgraph, bucket: Optional[int]) -> bool:
        return (
            sg.owner is self
            and sg.ready_count() > 0
            and sg.pinned == bucket
        )

    def pop_eligible(self, worker_id: int) -> Optional[Subgraph]:
        """Pop the first subgraph (by arrival order) with ready nodes that
        ``worker_id`` may execute: unpinned, or pinned to that worker.
        Stale heap entries encountered along the way are discarded."""
        while True:
            unpinned = self._heaps.get(None)
            pinned = self._heaps.get(worker_id)
            have_u = bool(unpinned)
            have_p = bool(pinned)
            if not have_u and not have_p:
                return None
            if have_u and (not have_p or unpinned[0][0] < pinned[0][0]):
                bucket = None
            else:
                bucket = worker_id
            sg = self._pop_entry(bucket)
            if sg is not None and self._entry_live(sg, bucket):
                return sg

    def reinsert(self, sg: Subgraph) -> None:
        """Put a popped-but-still-eligible subgraph back in its bucket's
        heap (its ``queue_seq`` restores the original FIFO position)."""
        if sg.owner is self and sg.ready_count() > 0:
            self._register(sg)

    def __repr__(self) -> str:
        return (
            f"<CellTypeQueue {self.cell_type.name!r} "
            f"subgraphs={len(self.subgraphs)} running={self.running_tasks}>"
        )


class Scheduler:
    """Forms batched tasks and assigns them to workers (paper Algorithm 1).

    The three *decisions* — which queue to serve, which nodes to batch,
    where a subgraph's work binds — live in a
    :class:`~repro.policies.PolicyBundle`; this class owns the mechanism
    (queues, counters, task construction, accounting).  When no bundle is
    given, the paper's defaults are derived from ``config`` (pinning and
    fast-path flags), reproducing the pre-policy-layer engine bit for bit.
    """

    def __init__(
        self,
        config: BatchingConfig,
        submit: Callable[[BatchedTask, "object"], None],
        policies: Optional[PolicyBundle] = None,
    ):
        self.config = config
        self.fast_path = getattr(config, "fast_path", True)
        self.policies = (
            policies if policies is not None else PolicyBundle.from_config(config)
        )
        self._submit = submit
        self._queues: Dict[str, CellTypeQueue] = {}
        self._queue_list: Tuple[CellTypeQueue, ...] = ()
        self._next_task_id = 0
        self.tasks_submitted = 0
        # Histogram of submitted batch sizes, for the evaluation's
        # "effective batch size" analysis.
        self.batch_size_counts: Counter = Counter()
        # Tracing scope (repro.trace), pushed down by the owning server's
        # attach_trace; None = record nothing.
        self.trace = None

    # -- registration -------------------------------------------------------

    def register_cell_type(self, cell_type: CellType) -> None:
        if cell_type.name in self._queues:
            raise ValueError(f"cell type {cell_type.name!r} registered twice")
        self._queues[cell_type.name] = CellTypeQueue(
            cell_type,
            self.config.for_cell(cell_type.name),
            fast_path=self.fast_path,
        )
        self._queue_list = tuple(self._queues.values())
        self._rebuild_arrays()

    def _rebuild_arrays(self) -> None:
        """(Re)build the vectorized-selection mirrors over the registered
        queues.  Worth it only on the fast path with two or more queues
        (multi-cell models: seq2seq, attention, tree); a single queue's
        scalar scan is already one comparison."""
        for queue in self._queue_list:
            queue.arrays = None
            queue.slot = -1
        if self.fast_path and _np is not None and len(self._queue_list) >= 2:
            QueueArrays(self._queue_list)

    def add_subgraph(self, sg: Subgraph) -> None:
        """Accept a released subgraph into its cell type's queue."""
        if sg.cell_type_name not in self._queues:
            raise KeyError(
                f"subgraph of unregistered cell type {sg.cell_type_name!r}"
            )
        self.policies.placement.on_admit(sg)
        self._queues[sg.cell_type_name].add(sg)

    # -- Algorithm 1 ----------------------------------------------------------

    def schedule(self, worker) -> int:
        """Pick a cell type for ``worker`` (the bundle's queue-priority
        policy; the paper's three-tier criterion by default) and submit
        batched tasks.  Returns the number of tasks submitted."""
        chosen = self.policies.priority.select(self._queue_list)
        if chosen is None:
            return 0
        return self._batch(chosen, worker)

    def _batch(self, queue: CellTypeQueue, worker) -> int:
        """Algorithm 1's ``Batch``: submit up to MaxTasksToSubmit tasks."""
        num_tasks = 0
        while num_tasks < self.config.max_tasks_to_submit:
            plan = self.policies.formation.form(queue, worker)
            batch_size = sum(count for _, count in plan)
            if batch_size == 0:
                break
            if batch_size >= queue.config.min_batch or num_tasks == 0:
                self._commit(queue, worker, plan)
                num_tasks += 1
            else:
                break
        return num_tasks

    def _form_batched_task(
        self, queue: CellTypeQueue, worker
    ) -> List[Tuple[Subgraph, int]]:
        """The bundle's ``FormBatchedTask`` (kept as a seam for the
        invariant tests)."""
        return self.policies.formation.form(queue, worker)

    def _form_batched_task_reference(
        self, queue: CellTypeQueue, worker
    ) -> List[Tuple[Subgraph, int]]:
        """Brute-force reference plan, regardless of the active bundle."""
        return PaperBatchFormation(fast_path=False).form(queue, worker)

    def _commit(
        self,
        queue: CellTypeQueue,
        worker,
        plan: List[Tuple[Subgraph, int]],
    ) -> None:
        """Materialise a planned batch: pop the ready nodes, build the task,
        bind subgraphs to the worker (placement policy), update
        (optimistic) dependencies, and submit."""
        entries = []
        for sg, count in plan:
            node_ids = sg.take_ready(count)
            if len(node_ids) != count:
                raise RuntimeError(
                    f"subgraph {sg.subgraph_id}: planned {count} nodes but "
                    f"only {len(node_ids)} were ready"
                )
            for nid in node_ids:
                entries.append((sg, sg.graph.node(nid)))
            self.policies.placement.bind(sg, worker.worker_id)
            sg.mark_submitted(node_ids)
            if sg.exhausted():
                queue.remove(sg)
                self.policies.formation.on_subgraph_removed(queue, sg)
        task = BatchedTask(self._next_task_id, queue.cell_type, entries)
        self._next_task_id += 1
        self._adjust_running(queue, 1)
        self.tasks_submitted += 1
        self.batch_size_counts[task.batch_size] += 1
        if self.trace is not None:
            self.trace.instant(
                trace_events.SCHED_BATCH_FORMED,
                trace_events.SCHED,
                device_id=worker.worker_id,
                task_id=task.task_id,
                args={
                    "requests": [sg.request.request_id for sg in task.subgraphs()],
                    "cell": queue.cell_type.name,
                    "batch": task.batch_size,
                },
            )
        self._submit(task, worker)

    # -- failure handling (DESIGN.md §8) -------------------------------------

    def evict_request(self, request) -> int:
        """Unwind a cancelled *or preempted* request: drop every one of its
        subgraphs that is still queued.  Terminal cancellation and the
        memory layer's evict-and-restart (``Manager.restart_request``) both
        come through here.  ``CellTypeQueue.remove`` gives the ready counter
        back and clears the owner, so the lazy heap entries left behind are
        recognised as stale and discarded on pop — the fast path stays
        bit-identical to a brute-force rescan.  The formation policy's
        ``on_subgraph_removed`` hook fires for each eviction so bundles
        keeping their own eligibility indexes stay consistent.  Returns how
        many subgraphs were evicted."""
        evicted = 0
        for sg in request.subgraphs.values():
            owner = sg.owner
            if owner is not None:
                owner.remove(sg)
                self.policies.formation.on_subgraph_removed(owner, sg)
                evicted += 1
        if self.trace is not None:
            self.trace.instant(
                trace_events.SCHED_EVICT,
                trace_events.SCHED,
                request_id=request.request_id,
                args={"evicted": evicted},
            )
        return evicted

    def resubmit(self, task: BatchedTask) -> None:
        """Account a retried task as running again.  Retries do not count
        toward ``tasks_submitted`` or the batch-size histogram — those
        describe the scheduling policy's decisions, which a retry replays
        rather than makes."""
        self._adjust_running(self._queues[task.cell_type.name], 1)

    def _adjust_running(self, queue: CellTypeQueue, delta: int) -> None:
        queue.running_tasks += delta
        if queue.arrays is not None:
            queue.arrays.running[queue.slot] = queue.running_tasks

    def repin_queued(self, dead_worker_id: int, replacement: Optional[int]) -> int:
        """A device died: migrate every queued subgraph pinned to it to the
        placement policy's choice (``replacement`` under the default
        policies; unpin when None).  O(queued subgraphs), which is fine for
        the rare device-loss path.  Returns how many moved."""
        placement = self.policies.placement
        moved = 0
        for queue in self._queue_list:
            for sg in queue.subgraphs.values():
                if sg.pinned == dead_worker_id:
                    sg.repin(
                        placement.repin_target(sg, dead_worker_id, replacement)
                    )
                    moved += 1
        return moved

    # -- completion ---------------------------------------------------------

    def task_completed(self, task: BatchedTask) -> None:
        queue = self._queues[task.cell_type.name]
        self._adjust_running(queue, -1)
        if queue.running_tasks < 0:
            raise RuntimeError(
                f"cell type {task.cell_type.name!r}: running task underflow"
            )

    # -- introspection --------------------------------------------------------

    def total_ready_nodes(self) -> int:
        return sum(q.num_ready_nodes() for q in self._queue_list)

    def queue_for(self, cell_name: str) -> CellTypeQueue:
        return self._queues[cell_name]

    def mean_batch_size(self) -> float:
        total = sum(b * c for b, c in self.batch_size_counts.items())
        count = sum(self.batch_size_counts.values())
        return total / count if count else 0.0

"""Batching and scheduling configuration.

Gathers the tunables Algorithm 1 reads: the supported batch sizes per cell
type (``Bsizes`` with its ``Max``/``Min``), per-cell-type priorities, and
``MaxTasksToSubmit`` (paper default 5).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence


class CellTypeConfig:
    """Per-cell-type knobs.

    ``batch_sizes`` is the paper's ``Bsizes``: the set of supported batch
    sizes, whose maximum is the desired (throughput-optimal) batch size
    determined by offline benchmarking, and whose minimum is the smallest
    batch worth submitting as a follow-up task inside one scheduling round.
    ``priority`` orders cell types when several qualify (higher wins);
    decoder > encoder and internal > leaf in the paper's models.
    """

    def __init__(
        self,
        batch_sizes: Sequence[int] = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512),
        priority: int = 0,
    ):
        sizes = sorted(set(int(b) for b in batch_sizes))
        if not sizes:
            raise ValueError("batch_sizes must be non-empty")
        if sizes[0] < 1:
            raise ValueError("batch sizes must be >= 1")
        self.batch_sizes = tuple(sizes)
        self.priority = priority

    @property
    def max_batch(self) -> int:
        return self.batch_sizes[-1]

    @property
    def min_batch(self) -> int:
        return self.batch_sizes[0]

    def to_dict(self) -> Dict:
        """Plain-data form for :mod:`repro.registry` specs."""
        return {"batch_sizes": list(self.batch_sizes), "priority": self.priority}

    @classmethod
    def from_dict(cls, data: Dict) -> "CellTypeConfig":
        return cls(
            batch_sizes=data.get("batch_sizes", cls().batch_sizes),
            priority=data.get("priority", 0),
        )

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, CellTypeConfig)
            and self.batch_sizes == other.batch_sizes
            and self.priority == other.priority
        )

    def __repr__(self) -> str:
        return (
            f"CellTypeConfig(max={self.max_batch}, min={self.min_batch}, "
            f"priority={self.priority})"
        )


def _power_of_two_sizes(max_batch: int) -> tuple:
    sizes = []
    b = 1
    while b <= max_batch:
        sizes.append(b)
        b *= 2
    if sizes[-1] != max_batch:
        sizes.append(max_batch)
    return tuple(sizes)


class BatchingConfig:
    """Scheduler-wide configuration.

    ``max_tasks_to_submit`` bounds how many batched tasks one scheduling
    round pushes to a worker (paper default 5): small enough that other cell
    types get scheduled and new arrivals can join, large enough to keep the
    GPU busy across the scheduling gap.

    ``pinning`` can be disabled for the ablation study; without it,
    successive tasks of one subgraph may land on different workers and pay
    the cross-device copy cost (and are serialised by explicit dependency
    rather than stream FIFO order).

    ``fast_path`` selects the scheduler's O(1) incremental ready-node
    accounting (the default).  Setting it False falls back to the retained
    brute-force queue scans — same decisions, asymptotically slower — used
    by the equivalence test and as the benchmark baseline.
    """

    def __init__(
        self,
        default: Optional[CellTypeConfig] = None,
        per_cell: Optional[Dict[str, CellTypeConfig]] = None,
        max_tasks_to_submit: int = 5,
        pinning: bool = True,
        fast_path: bool = True,
    ):
        if max_tasks_to_submit < 1:
            raise ValueError("max_tasks_to_submit must be >= 1")
        self.default = default if default is not None else CellTypeConfig()
        self.per_cell: Dict[str, CellTypeConfig] = dict(per_cell or {})
        self.max_tasks_to_submit = max_tasks_to_submit
        self.pinning = pinning
        self.fast_path = fast_path

    @classmethod
    def with_max_batch(
        cls,
        max_batch: int,
        per_cell_max: Optional[Dict[str, int]] = None,
        per_cell_priority: Optional[Dict[str, int]] = None,
        max_tasks_to_submit: int = 5,
        pinning: bool = True,
        fast_path: bool = True,
    ) -> "BatchingConfig":
        """Convenience constructor: power-of-two Bsizes up to ``max_batch``.

        ``per_cell_max`` overrides the maximum for specific cell types (the
        paper's BatchMaker-512,256 Seq2Seq configuration), and
        ``per_cell_priority`` assigns priorities by cell-type name.
        """
        per_cell: Dict[str, CellTypeConfig] = {}
        names = set(per_cell_max or {}) | set(per_cell_priority or {})
        for name in names:
            cap = (per_cell_max or {}).get(name, max_batch)
            prio = (per_cell_priority or {}).get(name, 0)
            per_cell[name] = CellTypeConfig(_power_of_two_sizes(cap), prio)
        return cls(
            default=CellTypeConfig(_power_of_two_sizes(max_batch)),
            per_cell=per_cell,
            max_tasks_to_submit=max_tasks_to_submit,
            pinning=pinning,
            fast_path=fast_path,
        )

    def for_cell(self, cell_name: str) -> CellTypeConfig:
        return self.per_cell.get(cell_name, self.default)

    def to_dict(self) -> Dict:
        """Plain-data form for :mod:`repro.registry` specs (exact
        round-trip through :meth:`from_dict`)."""
        return {
            "default": self.default.to_dict(),
            "per_cell": {
                name: cfg.to_dict() for name, cfg in sorted(self.per_cell.items())
            },
            "max_tasks_to_submit": self.max_tasks_to_submit,
            "pinning": self.pinning,
            "fast_path": self.fast_path,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "BatchingConfig":
        return cls(
            default=CellTypeConfig.from_dict(data.get("default", {})),
            per_cell={
                name: CellTypeConfig.from_dict(cfg)
                for name, cfg in data.get("per_cell", {}).items()
            },
            max_tasks_to_submit=data.get("max_tasks_to_submit", 5),
            pinning=data.get("pinning", True),
            fast_path=data.get("fast_path", True),
        )

    def __eq__(self, other) -> bool:
        return isinstance(other, BatchingConfig) and self.to_dict() == other.to_dict()

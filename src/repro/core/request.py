"""Request lifecycle and timing record.

A request's latency decomposes exactly as the paper measures it in §7.3:
*queuing time* (arrival -> first cell starts executing) and *computation
time* (first execution -> result returned).  Those two CDFs are Figure 9.
"""

from __future__ import annotations

import enum
from typing import Any, List, Optional

from repro.core.cell_graph import CellGraph


class RequestState(enum.Enum):
    PENDING = "pending"        # arrived, not yet executing
    RUNNING = "running"        # at least one cell executed
    FINISHED = "finished"      # last cell done, result returned
    TIMED_OUT = "timed_out"    # deadline expired or failure budget exhausted
    REJECTED = "rejected"      # shed at admission (SLA load shedding)


# States a request can never leave; every request reaches exactly one.
TERMINAL_STATES = frozenset(
    {RequestState.FINISHED, RequestState.TIMED_OUT, RequestState.REJECTED}
)


class InferenceRequest:
    """One inference request and its unfolded cell graph."""

    def __init__(self, request_id: int, payload: Any, arrival_time: float):
        self.request_id = request_id
        self.payload = payload
        self.arrival_time = arrival_time
        self.graph: Optional[CellGraph] = None
        self.subgraphs: dict = {}  # subgraph_id -> Subgraph, set by the processor
        self.state = RequestState.PENDING

        # Timing (seconds; virtual or wall clock depending on the server).
        self.start_time: Optional[float] = None   # first cell began executing
        self.finish_time: Optional[float] = None  # result returned

        # SLA state (all None/zero unless the server enforces deadlines).
        self.deadline: Optional[float] = None     # absolute cut-off time
        self.terminal_time: Optional[float] = None  # when a terminal state hit
        self.cancel_reason: Optional[str] = None  # "deadline", "retries_exhausted", ...
        self.retries = 0                          # task retries touching this request
        self.restarts = 0                         # evict-and-restart preemptions
        self._timeout_event = None                # loop Event handle, if armed

        # Completion bookkeeping maintained by the request processor.
        self.remaining_nodes = 0
        self.unfolding_complete = True  # dynamic decoders flip this off

        self.result: Optional[List[Any]] = None

    # -- lifecycle transitions (called by the engine) -----------------------

    def mark_started(self, now: float) -> None:
        # A request OOM-cancelled at reservation time is still carried in
        # the launching task's entries; starting must not resurrect it.
        if self.start_time is None and self.state is RequestState.PENDING:
            self.start_time = now
            self.state = RequestState.RUNNING

    def _enter_terminal(self, state: RequestState, now: float) -> None:
        if self.state in TERMINAL_STATES:
            raise RuntimeError(
                f"request {self.request_id} terminal state set twice: "
                f"{self.state.value} -> {state.value}"
            )
        self.state = state
        self.terminal_time = now

    def mark_finished(self, now: float) -> None:
        self._enter_terminal(RequestState.FINISHED, now)
        self.finish_time = now

    def mark_timed_out(self, now: float, reason: str = "deadline") -> None:
        self._enter_terminal(RequestState.TIMED_OUT, now)
        self.cancel_reason = reason

    def mark_rejected(self, now: float, reason: str = "load_shed") -> None:
        self._enter_terminal(RequestState.REJECTED, now)
        self.cancel_reason = reason

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    # -- metrics -------------------------------------------------------------

    @property
    def latency(self) -> Optional[float]:
        if self.finish_time is None:
            return None
        return self.finish_time - self.arrival_time

    @property
    def queuing_time(self) -> Optional[float]:
        if self.start_time is None:
            return None
        return self.start_time - self.arrival_time

    @property
    def computation_time(self) -> Optional[float]:
        if self.finish_time is None or self.start_time is None:
            return None
        return self.finish_time - self.start_time

    def __repr__(self) -> str:
        return (
            f"<InferenceRequest {self.request_id} {self.state.value} "
            f"arrival={self.arrival_time:.6f}>"
        )

"""Seq2Seq with attention decoding (extension beyond the paper's models).

Uses the fixed-capacity padded memory of :mod:`repro.cells.attention` so
attention cells of different requests stay shape-compatible and batch at
the cell level like everything else.  Source sequences longer than
``max_src`` are rejected at unfolding time.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cells.attention import AttentionDecoderCell, AttentionEncoderCell
from repro.core.cell import CellType
from repro.core.cell_graph import CellGraph, NodeOutput, ValueInput
from repro.gpu.costmodel import (
    CostModel,
    seq2seq_decoder_step_table,
    v100_lstm_step_table,
)
from repro.models.base import Model
from repro.models.seq2seq import GO_TOKEN
from repro.tensor.parameters import ParameterStore

ATTN_ENCODER_CELL = "attn_encoder"
ATTN_DECODER_CELL = "attn_decoder"


class AttentionSeq2SeqModel(Model):
    """Attention-based translation model served with cellular batching."""

    def __init__(
        self,
        hidden_dim: int = 1024,
        src_vocab_size: int = 30000,
        tgt_vocab_size: int = 30000,
        embed_dim: Optional[int] = None,
        max_src: int = 64,
        real: bool = False,
        seed: int = 0,
    ):
        self.name = "attention-seq2seq"
        self.hidden_dim = hidden_dim
        self.max_src = max_src
        self.real = real
        self.params = ParameterStore(seed=seed)
        embed = embed_dim if embed_dim is not None else hidden_dim

        if real:
            self._encoder_cell = AttentionEncoderCell(
                "attn/enc", src_vocab_size, embed, hidden_dim, max_src, self.params
            )
            self._decoder_cell = AttentionDecoderCell(
                "attn/dec", tgt_vocab_size, embed, hidden_dim, max_src, self.params
            )
            self._encoder_type = CellType.from_cell(
                self._encoder_cell, name=ATTN_ENCODER_CELL
            )
            self._decoder_type = CellType.from_cell(
                self._decoder_cell, name=ATTN_DECODER_CELL
            )
        else:
            self._encoder_cell = self._decoder_cell = None
            self._encoder_type = CellType(
                ATTN_ENCODER_CELL, ("ids", "h", "c", "mem", "pos"),
                ("h", "c", "mem"), num_operators=13,
            )
            self._decoder_type = CellType(
                ATTN_DECODER_CELL, ("ids", "h", "c", "mem", "mask"),
                ("h", "c", "token"), num_operators=21,
            )

    # -- Model interface ---------------------------------------------------------

    def cell_types(self) -> Sequence[CellType]:
        return [self._encoder_type, self._decoder_type]

    def _normalize(self, payload: Any) -> Dict[str, Any]:
        src = payload["src"]
        src_tokens = (
            [0] * int(src) if isinstance(src, (int, np.integer)) else [int(t) for t in src]
        )
        if not src_tokens:
            raise ValueError("empty source sequence")
        if len(src_tokens) > self.max_src:
            raise ValueError(
                f"source length {len(src_tokens)} exceeds attention memory "
                f"capacity {self.max_src}"
            )
        return {"src": src_tokens, "tgt_len": int(payload["tgt_len"])}

    def unfold(self, graph: CellGraph, payload: Any) -> None:
        spec = self._normalize(payload)
        zeros = (
            np.zeros(self.hidden_dim, dtype=np.float32) if self.real else None
        )
        empty_mem = (
            np.zeros((self.max_src, self.hidden_dim), dtype=np.float32)
            if self.real
            else None
        )
        prev = None
        for position, token in enumerate(spec["src"]):
            inputs = {"ids": ValueInput(token), "pos": ValueInput(position)}
            if prev is None:
                inputs.update(
                    h=ValueInput(zeros), c=ValueInput(zeros), mem=ValueInput(empty_mem)
                )
            else:
                inputs.update(
                    h=NodeOutput(prev.node_id, "h"),
                    c=NodeOutput(prev.node_id, "c"),
                    mem=NodeOutput(prev.node_id, "mem"),
                )
            prev = graph.add_node(self._encoder_type, inputs)

        mask = None
        if self.real:
            mask = np.zeros(self.max_src, dtype=np.float32)
            mask[: len(spec["src"])] = 1.0
        node = None
        for step in range(spec["tgt_len"]):
            inputs = {
                "mem": NodeOutput(prev.node_id, "mem"),
                "mask": ValueInput(mask),
            }
            if node is None:
                inputs.update(
                    ids=ValueInput(GO_TOKEN),
                    h=NodeOutput(prev.node_id, "h"),
                    c=NodeOutput(prev.node_id, "c"),
                )
            else:
                inputs.update(
                    ids=NodeOutput(node.node_id, "token"),
                    h=NodeOutput(node.node_id, "h"),
                    c=NodeOutput(node.node_id, "c"),
                )
            node = graph.add_node(self._decoder_type, inputs)
            graph.mark_result(node, "token")

    def phases(self, payload: Any) -> List[Tuple[str, int]]:
        spec = self._normalize(payload)
        return [
            (ATTN_ENCODER_CELL, len(spec["src"])),
            (ATTN_DECODER_CELL, spec["tgt_len"]),
        ]

    def default_cost_model(self) -> CostModel:
        model = CostModel()
        # Memory write adds a small constant to the encoder step; attention
        # adds ~15% to the decoder step (two thin matmuls + softmax over
        # max_src positions, dwarfed by the vocabulary projection).
        model.register(ATTN_ENCODER_CELL, v100_lstm_step_table().scale(1.05))
        model.register(ATTN_DECODER_CELL, seq2seq_decoder_step_table().scale(1.15))
        return model

    def reference_forward(self, payload: Any) -> Optional[List[Any]]:
        if not self.real:
            return None
        spec = self._normalize(payload)
        h = np.zeros((1, self.hidden_dim), dtype=np.float32)
        c = np.zeros((1, self.hidden_dim), dtype=np.float32)
        mem = np.zeros((1, self.max_src, self.hidden_dim), dtype=np.float32)
        for position, token in enumerate(spec["src"]):
            out = self._encoder_cell(
                {
                    "ids": np.asarray([token]),
                    "h": h,
                    "c": c,
                    "mem": mem,
                    "pos": np.asarray([position]),
                }
            )
            h, c, mem = out["h"], out["c"], out["mem"]
        mask = np.zeros((1, self.max_src), dtype=np.float32)
        mask[0, : len(spec["src"])] = 1.0
        tokens: List[int] = []
        current = GO_TOKEN
        for _ in range(spec["tgt_len"]):
            out = self._decoder_cell(
                {
                    "ids": np.asarray([current]),
                    "h": h,
                    "c": c,
                    "mem": mem,
                    "mask": mask,
                }
            )
            h, c = out["h"], out["c"]
            current = int(out["token"][0])
            tokens.append(current)
        return tokens

"""Sequence-to-sequence model with feed-previous decoding (§7.4, Fig 12).

Two cell types — encoder (embedding + LSTM) and decoder (embedding + LSTM +
vocabulary projection + argmax) — that do not share weights.  The first
decoder cell consumes the encoder's final state and the <go> symbol; each
subsequent decoder cell feeds on the previous decoder's emitted token.

Two unfolding modes:

* **static** (paper's evaluation setting): the payload fixes the decode
  length ("we decode for a number of steps equal to the corresponding
  English sequence length"), so the whole graph is known at arrival and
  partitions into one encoder and one decoder subgraph.
* **dynamic** (our extension; the precursor of continuous batching): the
  graph grows one decoder cell at a time until <eos> is emitted or
  ``max_decode`` is reached.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cells.composite import CompositeCell
from repro.cells.embedding import EmbeddingCell
from repro.cells.lstm import LSTMCell
from repro.cells.projection import ProjectionCell
from repro.core.cell import CellType
from repro.core.cell_graph import CellGraph, CellNode, NodeOutput, ValueInput
from repro.gpu.costmodel import (
    CostModel,
    seq2seq_decoder_step_table,
    v100_lstm_step_table,
)
from repro.models.base import Model
from repro.tensor.parameters import ParameterStore

ENCODER_CELL = "encoder"
DECODER_CELL = "decoder"

GO_TOKEN = 1
EOS_TOKEN = 2


def _normalize_payload(
    payload: Any,
    dynamic_default: bool = False,
    max_decode_default: Optional[int] = None,
) -> Dict[str, Any]:
    """Canonicalise a Seq2Seq payload.

    Accepted forms: ``{"src": [...], "tgt_len": n}`` (static),
    ``{"src": [...], "dynamic": True, "max_decode": n}`` (dynamic), or the
    shorthand ``(src_len, tgt_len)`` tuple for simulation-only workloads.

    ``dynamic_default``/``max_decode_default`` are the model's constructor
    knobs (``Seq2SeqModel(dynamic=True, max_decode=N)``): a payload that
    does not say otherwise inherits them, which is how the registry turns a
    plain static-looking dataset into a dynamic-decode workload.  A
    dynamic payload's decode budget resolves as: its own ``max_decode``,
    else the model default, else its ``tgt_len``, else ``len(src) + 10``.
    """
    if isinstance(payload, tuple) and len(payload) == 2:
        src_len, tgt_len = payload
        payload = {"src": int(src_len), "tgt_len": int(tgt_len)}
    if "src" not in payload:
        raise ValueError("Seq2Seq payload needs a 'src' field")
    src = payload["src"]
    src_tokens = [0] * int(src) if isinstance(src, (int, np.integer)) else [int(t) for t in src]
    if not src_tokens:
        raise ValueError("empty source sequence")
    norm = {"src": src_tokens, "dynamic": bool(payload.get("dynamic", dynamic_default))}
    if norm["dynamic"]:
        max_decode = payload.get("max_decode")
        if max_decode is None:
            max_decode = max_decode_default
        if max_decode is None:
            max_decode = payload.get("tgt_len")
        if max_decode is None:
            max_decode = len(src_tokens) + 10
        norm["max_decode"] = int(max_decode)
        if norm["max_decode"] < 1:
            raise ValueError("max_decode must be >= 1")
    else:
        if "tgt_len" not in payload:
            raise ValueError("static Seq2Seq payload needs 'tgt_len'")
        norm["tgt_len"] = int(payload["tgt_len"])
        if norm["tgt_len"] < 1:
            raise ValueError("tgt_len must be >= 1")
    return norm


class Seq2SeqModel(Model):
    """Encoder/decoder translation model."""

    def __init__(
        self,
        hidden_dim: int = 1024,
        src_vocab_size: int = 30000,
        tgt_vocab_size: int = 30000,
        embed_dim: Optional[int] = None,
        real: bool = False,
        seed: int = 0,
        dynamic: bool = False,
        max_decode: Optional[int] = None,
    ):
        self.name = "seq2seq"
        self.hidden_dim = hidden_dim
        self.src_vocab_size = src_vocab_size
        self.tgt_vocab_size = tgt_vocab_size
        self.embed_dim = embed_dim if embed_dim is not None else hidden_dim
        self.real = real
        # Default decode mode for payloads that don't choose one themselves;
        # the registry sets these via model_args to build a dynamic-decode
        # server from an ordinary (src, tgt_len) dataset.
        self.dynamic = dynamic
        self.max_decode = max_decode
        self.params = ParameterStore(seed=seed)

        if real:
            self._build_real_cells()
        else:
            self._encoder_type = CellType(
                ENCODER_CELL, ("ids", "h", "c"), ("h", "c"), num_operators=12
            )
            self._decoder_type = CellType(
                DECODER_CELL,
                ("ids", "h", "c"),
                ("h", "c", "token"),
                num_operators=15,
            )

    def _build_real_cells(self) -> None:
        enc_embed = EmbeddingCell(
            "enc/embed", self.src_vocab_size, self.embed_dim, self.params
        )
        enc_lstm = LSTMCell("enc/step", self.embed_dim, self.hidden_dim, self.params)
        self._enc_cells = (enc_embed, enc_lstm)
        encoder = CompositeCell(
            ENCODER_CELL,
            input_names=("ids", "h", "c"),
            output_names=("h", "c"),
            stages=[
                (enc_embed, {"ids": ("external", "ids")}),
                (
                    enc_lstm,
                    {
                        "x": ("stage", 0, "emb"),
                        "h": ("external", "h"),
                        "c": ("external", "c"),
                    },
                ),
            ],
            exports={"h": ("stage", 1, "h"), "c": ("stage", 1, "c")},
        )
        dec_embed = EmbeddingCell(
            "dec/embed", self.tgt_vocab_size, self.embed_dim, self.params
        )
        dec_lstm = LSTMCell("dec/step", self.embed_dim, self.hidden_dim, self.params)
        dec_proj = ProjectionCell(
            "dec/proj", self.hidden_dim, self.tgt_vocab_size, self.params
        )
        self._dec_cells = (dec_embed, dec_lstm, dec_proj)
        decoder = CompositeCell(
            DECODER_CELL,
            input_names=("ids", "h", "c"),
            output_names=("h", "c", "token"),
            stages=[
                (dec_embed, {"ids": ("external", "ids")}),
                (
                    dec_lstm,
                    {
                        "x": ("stage", 0, "emb"),
                        "h": ("external", "h"),
                        "c": ("external", "c"),
                    },
                ),
                (dec_proj, {"h": ("stage", 1, "h")}),
            ],
            exports={
                "h": ("stage", 1, "h"),
                "c": ("stage", 1, "c"),
                "token": ("stage", 2, "token"),
            },
        )
        self._encoder_type = CellType.from_cell(encoder)
        self._decoder_type = CellType.from_cell(decoder)

    # -- Model interface -----------------------------------------------------

    def cell_types(self) -> Sequence[CellType]:
        return [self._encoder_type, self._decoder_type]

    def unfold(self, graph: CellGraph, payload: Any) -> None:
        spec = self._normalize(payload)
        zeros = self._zero_state_row()
        prev = None
        for token in spec["src"]:
            inputs = {"ids": ValueInput(token)}
            if prev is None:
                inputs["h"] = ValueInput(zeros)
                inputs["c"] = ValueInput(zeros)
            else:
                inputs["h"] = NodeOutput(prev.node_id, "h")
                inputs["c"] = NodeOutput(prev.node_id, "c")
            prev = graph.add_node(self._encoder_type, inputs)

        first_decoder = graph.add_node(
            self._decoder_type,
            {
                "ids": ValueInput(GO_TOKEN),
                "h": NodeOutput(prev.node_id, "h"),
                "c": NodeOutput(prev.node_id, "c"),
            },
        )
        graph.mark_result(first_decoder, "token")
        if spec["dynamic"]:
            return  # grows via extend()
        node = first_decoder
        for _ in range(spec["tgt_len"] - 1):
            node = graph.add_node(
                self._decoder_type,
                {
                    "ids": NodeOutput(node.node_id, "token"),
                    "h": NodeOutput(node.node_id, "h"),
                    "c": NodeOutput(node.node_id, "c"),
                },
            )
            graph.mark_result(node, "token")

    def extend(
        self, graph: CellGraph, completed: CellNode, payload: Any
    ) -> List[CellNode]:
        spec = self._normalize(payload)
        if not spec["dynamic"] or completed.cell_type.name != DECODER_CELL:
            return []
        # Stop once <eos> was emitted or the decode budget is exhausted.
        decoded = graph.cell_type_census().get(DECODER_CELL, 0)
        if decoded >= spec["max_decode"]:
            return []
        if completed.outputs is not None:
            token = int(np.asarray(completed.outputs["token"]).reshape(()))
            if token == EOS_TOKEN:
                return []
        node = graph.add_node(
            self._decoder_type,
            {
                "ids": NodeOutput(completed.node_id, "token"),
                "h": NodeOutput(completed.node_id, "h"),
                "c": NodeOutput(completed.node_id, "c"),
            },
        )
        graph.mark_result(node, "token")
        return [node]

    def phases(self, payload: Any) -> List[Tuple[str, int]]:
        spec = self._normalize(payload)
        if spec["dynamic"]:
            raise NotImplementedError(
                "padding baselines cannot serve dynamic-length decoding"
            )
        return [(ENCODER_CELL, len(spec["src"])), (DECODER_CELL, spec["tgt_len"])]

    def default_cost_model(self) -> CostModel:
        model = CostModel()
        model.register(ENCODER_CELL, v100_lstm_step_table())
        model.register(DECODER_CELL, seq2seq_decoder_step_table())
        return model

    def reference_forward(self, payload: Any) -> Optional[List[Any]]:
        if not self.real:
            return None
        spec = self._normalize(payload)
        enc_embed, enc_lstm = self._enc_cells
        dec_embed, dec_lstm, dec_proj = self._dec_cells
        h = np.zeros((1, self.hidden_dim), dtype=np.float32)
        c = np.zeros((1, self.hidden_dim), dtype=np.float32)
        for token in spec["src"]:
            emb = enc_embed({"ids": np.asarray([token])})["emb"]
            out = enc_lstm({"x": emb, "h": h, "c": c})
            h, c = out["h"], out["c"]
        tokens: List[int] = []
        current = GO_TOKEN
        steps = spec["max_decode"] if spec["dynamic"] else spec["tgt_len"]
        for _ in range(steps):
            emb = dec_embed({"ids": np.asarray([current])})["emb"]
            out = dec_lstm({"x": emb, "h": h, "c": c})
            h, c = out["h"], out["c"]
            token = int(dec_proj({"h": h})["token"][0])
            tokens.append(token)
            current = token
            if spec["dynamic"] and token == EOS_TOKEN:
                break
        return tokens

    # -- internals --------------------------------------------------------------

    def _normalize(self, payload: Any) -> Dict[str, Any]:
        return _normalize_payload(payload, self.dynamic, self.max_decode)

    def _zero_state_row(self):
        if self.real:
            return np.zeros(self.hidden_dim, dtype=np.float32)
        return None

"""Beam-search Seq2Seq decoding on top of cellular batching (extension).

The paper decodes greedily (argmax).  Beam search is the natural extension
and the hardest case for cell-level batching: the decode-side cell graph
*branches* — each step runs one decoder cell per beam plus a selection cell
that prunes to the top-k continuations, and the wiring of step t+1 depends
on data produced at step t (which parent beam each survivor extends).

Cellular batching handles this with the dynamic-unfolding hook: when a
selection cell completes, ``extend`` reads its outputs (tokens, parent
indices, scores) and appends the next step's decoder cells wired to the
selected parents, plus the next selection cell.  Decoder cells of *other*
requests batch with these freely; selection cells batch with other
requests' selection cells of the same arity.

Simplifications versus production beam search: beams are length-synchronous
and decoding stops when the highest-scoring beam emits <eos> (finished
side beams are not frozen), which keeps every step exactly k decoder cells.
In simulation-only mode (no real compute) the data-dependent wiring is
unavailable, so beams chain linearly (j -> j) — timing behaviour is
preserved, token values are not produced.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cells.base import Cell
from repro.core.cell import CellType
from repro.core.cell_graph import CellGraph, CellNode, NodeOutput, ValueInput
from repro.gpu.costmodel import (
    CostModel,
    seq2seq_decoder_step_table,
    v100_lstm_step_table,
)
from repro.models.base import Model
from repro.models.seq2seq import EOS_TOKEN, GO_TOKEN, Seq2SeqModel
from repro.tensor import ops

BEAM_DECODER_CELL = "bs_decoder"
FIRST_SELECT_CELL = "bs_select_first"
SELECT_CELL = "bs_select"


class BeamSelectCell(Cell):
    """Top-k continuation selection across ``k_in`` beams.

    Inputs: ``logits_i`` (batch, vocab) for each incoming beam, plus
    ``prev_scores`` (batch, k_in).  Outputs per surviving beam j:
    ``token_j`` (batch,), and jointly ``tokens``/``parents`` (batch, k_out)
    and ``scores`` (batch, k_out) of accumulated log-probabilities.
    """

    def __init__(self, name: str, k_in: int, k_out: int, vocab_size: int):
        if min(k_in, k_out, vocab_size) < 1:
            raise ValueError("k_in, k_out and vocab_size must be >= 1")
        inputs = [f"logits_{i}" for i in range(k_in)] + ["prev_scores"]
        outputs = (
            [f"token_{j}" for j in range(k_out)]
            + ["tokens", "parents", "scores"]
        )
        super().__init__(name, inputs, outputs)
        self.k_in = k_in
        self.k_out = k_out
        self.vocab_size = vocab_size

    def num_operators(self) -> int:
        return 4  # log_softmax, add, top-k, split

    def input_shape(self, name: str) -> Optional[Tuple[int, ...]]:
        if name == "prev_scores":
            return (self.k_in,)
        return (self.vocab_size,)

    def compute(self, inputs: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
        batch = inputs["prev_scores"].shape[0]
        # (batch, k_in, vocab) accumulated scores.
        log_probs = np.stack(
            [ops.log_softmax(inputs[f"logits_{i}"]) for i in range(self.k_in)],
            axis=1,
        )
        combined = inputs["prev_scores"][:, :, None] + log_probs
        flat = combined.reshape(batch, self.k_in * self.vocab_size)
        top = np.argsort(-flat, axis=1)[:, : self.k_out]
        parents = top // self.vocab_size
        tokens = top % self.vocab_size
        scores = np.take_along_axis(flat, top, axis=1)
        result: Dict[str, np.ndarray] = {
            "tokens": tokens,
            "parents": parents,
            "scores": scores,
        }
        for j in range(self.k_out):
            result[f"token_{j}"] = tokens[:, j]
        return result


class BeamSeq2SeqModel(Model):
    """Seq2Seq with beam-search decoding served via cellular batching.

    Payloads: ``{"src": [...], "beam": k, "max_steps": n}``.
    """

    def __init__(
        self,
        hidden_dim: int = 1024,
        src_vocab_size: int = 30000,
        tgt_vocab_size: int = 30000,
        embed_dim: Optional[int] = None,
        beam_width: int = 4,
        real: bool = False,
        seed: int = 0,
    ):
        if beam_width < 1:
            raise ValueError("beam_width must be >= 1")
        self.name = "beam-seq2seq"
        self.beam_width = beam_width
        self.tgt_vocab_size = tgt_vocab_size
        self.real = real
        # Reuse the plain Seq2Seq cells for the encoder and the decoder body
        # (shared weights across every beam, as beam search requires).
        self._base = Seq2SeqModel(
            hidden_dim=hidden_dim,
            src_vocab_size=src_vocab_size,
            tgt_vocab_size=tgt_vocab_size,
            embed_dim=embed_dim,
            real=real,
            seed=seed,
        )
        self.hidden_dim = self._base.hidden_dim
        self._encoder_type = self._base._encoder_type

        if real:
            # The decoder exposes logits instead of the argmax token: reuse
            # the base composite and surface its projection stage's logits.
            dec_embed, dec_lstm, dec_proj = self._base._dec_cells
            from repro.cells.composite import CompositeCell

            decoder = CompositeCell(
                BEAM_DECODER_CELL,
                input_names=("ids", "h", "c"),
                output_names=("h", "c", "logits"),
                stages=[
                    (dec_embed, {"ids": ("external", "ids")}),
                    (
                        dec_lstm,
                        {
                            "x": ("stage", 0, "emb"),
                            "h": ("external", "h"),
                            "c": ("external", "c"),
                        },
                    ),
                    (dec_proj, {"h": ("stage", 1, "h")}),
                ],
                exports={
                    "h": ("stage", 1, "h"),
                    "c": ("stage", 1, "c"),
                    "logits": ("stage", 2, "logits"),
                },
            )
            self._decoder_type = CellType.from_cell(decoder)
            self._first_select_type = CellType.from_cell(
                BeamSelectCell(FIRST_SELECT_CELL, 1, beam_width, tgt_vocab_size)
            )
            self._select_type = CellType.from_cell(
                BeamSelectCell(SELECT_CELL, beam_width, beam_width, tgt_vocab_size)
            )
        else:
            self._decoder_type = CellType(
                BEAM_DECODER_CELL, ("ids", "h", "c"), ("h", "c", "logits"),
                num_operators=15,
            )
            first = BeamSelectCell("spec1", 1, beam_width, tgt_vocab_size)
            later = BeamSelectCell("speck", beam_width, beam_width, tgt_vocab_size)
            self._first_select_type = CellType(
                FIRST_SELECT_CELL, first.input_names, first.output_names,
                num_operators=4,
            )
            self._select_type = CellType(
                SELECT_CELL, later.input_names, later.output_names,
                num_operators=4,
            )

    # -- Model interface ----------------------------------------------------

    def cell_types(self) -> Sequence[CellType]:
        return [
            self._encoder_type,
            self._decoder_type,
            self._first_select_type,
            self._select_type,
        ]

    def _normalize(self, payload: Any) -> Dict[str, Any]:
        src = payload["src"]
        src_tokens = (
            [0] * int(src) if isinstance(src, (int, np.integer)) else [int(t) for t in src]
        )
        if not src_tokens:
            raise ValueError("empty source sequence")
        return {
            "src": src_tokens,
            "max_steps": int(payload.get("max_steps", len(src_tokens) + 10)),
        }

    def unfold(self, graph: CellGraph, payload: Any) -> None:
        spec = self._normalize(payload)
        zeros = (
            np.zeros(self.hidden_dim, dtype=np.float32) if self.real else None
        )
        prev = None
        for token in spec["src"]:
            inputs = {"ids": ValueInput(token)}
            if prev is None:
                inputs["h"] = ValueInput(zeros)
                inputs["c"] = ValueInput(zeros)
            else:
                inputs["h"] = NodeOutput(prev.node_id, "h")
                inputs["c"] = NodeOutput(prev.node_id, "c")
            prev = graph.add_node(self._encoder_type, inputs)

        first_decoder = graph.add_node(
            self._decoder_type,
            {
                "ids": ValueInput(GO_TOKEN),
                "h": NodeOutput(prev.node_id, "h"),
                "c": NodeOutput(prev.node_id, "c"),
            },
        )
        select = graph.add_node(
            self._first_select_type,
            {
                "logits_0": NodeOutput(first_decoder.node_id, "logits"),
                "prev_scores": ValueInput(
                    np.zeros(1, dtype=np.float32) if self.real else None
                ),
            },
        )
        graph.mark_result(select, "tokens")
        graph.mark_result(select, "parents")
        # Per-request beam bookkeeping lives on the graph itself.
        graph.beam_decoders = {select.node_id: [first_decoder.node_id]}
        graph.beam_steps = 1

    def extend(
        self, graph: CellGraph, completed: CellNode, payload: Any
    ) -> List[CellNode]:
        if completed.cell_type.name not in (FIRST_SELECT_CELL, SELECT_CELL):
            return []
        spec = self._normalize(payload)
        if graph.beam_steps >= spec["max_steps"]:
            return []
        if completed.outputs is not None:
            best_token = int(np.asarray(completed.outputs["tokens"]).reshape(-1)[0])
            if best_token == EOS_TOKEN:
                return []

        k = self.beam_width
        prev_decoders = graph.beam_decoders[completed.node_id]
        if completed.outputs is not None:
            parents = [
                int(p)
                for p in np.asarray(completed.outputs["parents"]).reshape(-1)[:k]
            ]
        else:
            # Simulation-only: linear wiring preserves the graph's shape.
            parents = [min(j, len(prev_decoders) - 1) for j in range(k)]

        new_nodes: List[CellNode] = []
        decoder_ids = []
        for j in range(k):
            parent_node_id = prev_decoders[parents[j]]
            decoder = graph.add_node(
                self._decoder_type,
                {
                    "ids": NodeOutput(completed.node_id, f"token_{j}"),
                    "h": NodeOutput(parent_node_id, "h"),
                    "c": NodeOutput(parent_node_id, "c"),
                },
            )
            decoder_ids.append(decoder.node_id)
            new_nodes.append(decoder)
        select_inputs: Dict[str, Any] = {
            f"logits_{j}": NodeOutput(decoder_ids[j], "logits") for j in range(k)
        }
        select_inputs["prev_scores"] = NodeOutput(completed.node_id, "scores")
        select = graph.add_node(self._select_type, select_inputs)
        graph.mark_result(select, "tokens")
        graph.mark_result(select, "parents")
        new_nodes.append(select)
        graph.beam_decoders[select.node_id] = decoder_ids
        graph.beam_steps += 1
        return new_nodes

    def default_cost_model(self) -> CostModel:
        model = CostModel()
        model.register("encoder", v100_lstm_step_table())
        model.register(BEAM_DECODER_CELL, seq2seq_decoder_step_table())
        # Selection is a top-k over (k x vocab): cheap relative to matmuls.
        select_table = seq2seq_decoder_step_table().scale(0.1, name="bs-select")
        model.register(FIRST_SELECT_CELL, select_table)
        model.register(SELECT_CELL, select_table)
        return model

    # -- result decoding ------------------------------------------------------

    @staticmethod
    def decode_best(request) -> List[int]:
        """Backtrack the highest-scoring beam from a finished request.

        ``request.result`` holds (tokens, parents) per step in order; the
        best beam at the final step is index 0 (selection sorts by score).
        """
        if request.result is None:
            raise ValueError("request has no results (simulation-only run?)")
        steps = [
            (np.asarray(request.result[i]), np.asarray(request.result[i + 1]))
            for i in range(0, len(request.result), 2)
        ]
        sequence: List[int] = []
        beam = 0
        for tokens, parents in reversed(steps):
            sequence.append(int(tokens.reshape(-1)[beam]))
            beam = int(parents.reshape(-1)[beam])
        sequence.reverse()
        return sequence

    def reference_forward(self, payload: Any) -> Optional[List[Any]]:
        """Direct (unserved) beam search, for correctness comparison."""
        if not self.real:
            return None
        spec = self._normalize(payload)
        enc_embed, enc_lstm = self._base._enc_cells
        dec_embed, dec_lstm, dec_proj = self._base._dec_cells
        h = np.zeros((1, self.hidden_dim), dtype=np.float32)
        c = np.zeros((1, self.hidden_dim), dtype=np.float32)
        for token in spec["src"]:
            emb = enc_embed({"ids": np.asarray([token])})["emb"]
            out = enc_lstm({"x": emb, "h": h, "c": c})
            h, c = out["h"], out["c"]

        k = self.beam_width
        # Beam state: (score, tokens, h, c, last_token)
        beams = [(0.0, [], h, c, GO_TOKEN)]
        for step in range(spec["max_steps"]):
            candidates = []
            for score, tokens, bh, bc, last in beams:
                emb = dec_embed({"ids": np.asarray([last])})["emb"]
                out = dec_lstm({"x": emb, "h": bh, "c": bc})
                logits = dec_proj({"h": out["h"]})["logits"][0]
                log_probs = ops.log_softmax(logits[None, :])[0]
                order = np.argsort(-(score + log_probs))[: k]
                for token in order:
                    candidates.append(
                        (
                            score + float(log_probs[token]),
                            tokens + [int(token)],
                            out["h"],
                            out["c"],
                            int(token),
                        )
                    )
            candidates.sort(key=lambda b: -b[0])
            beams = candidates[:k]
            if beams[0][4] == EOS_TOKEN:
                break
        return beams[0][1]

"""Chain-structured GRU model (extension beyond the paper's applications).

Cellular batching is agnostic to the cell body; this model demonstrates
that by swapping the LSTM step for a GRU step (single hidden vector, no
cell state) while reusing the exact same serving machinery.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple

import numpy as np

from repro.cells.composite import CompositeCell
from repro.cells.embedding import EmbeddingCell
from repro.cells.gru import GRUCell
from repro.core.cell import CellType
from repro.core.cell_graph import CellGraph, NodeOutput, ValueInput
from repro.gpu.costmodel import CostModel, v100_lstm_step_table
from repro.models.base import Model
from repro.models.lstm_chain import _normalize_tokens
from repro.tensor.parameters import ParameterStore

GRU_CELL = "gru"


class GRUChainModel(Model):
    """GRU language model over token sequences."""

    def __init__(
        self,
        hidden_dim: int = 1024,
        vocab_size: int = 30000,
        embed_dim: Optional[int] = None,
        real: bool = False,
        seed: int = 0,
    ):
        self.name = "gru-chain"
        self.hidden_dim = hidden_dim
        self.vocab_size = vocab_size
        self.embed_dim = embed_dim if embed_dim is not None else hidden_dim
        self.real = real
        self.params = ParameterStore(seed=seed)

        if real:
            embed = EmbeddingCell("gru/embed", vocab_size, self.embed_dim, self.params)
            gru = GRUCell("gru/step", self.embed_dim, hidden_dim, self.params)
            self._gru_cell = gru
            step = CompositeCell(
                GRU_CELL,
                input_names=("ids", "h"),
                output_names=("h",),
                stages=[
                    (embed, {"ids": ("external", "ids")}),
                    (gru, {"x": ("stage", 0, "emb"), "h": ("external", "h")}),
                ],
                exports={"h": ("stage", 1, "h")},
            )
            self._step_type = CellType.from_cell(step)
        else:
            self._gru_cell = None
            self._step_type = CellType(GRU_CELL, ("ids", "h"), ("h",), num_operators=13)

    def cell_types(self) -> Sequence[CellType]:
        return [self._step_type]

    def unfold(self, graph: CellGraph, payload: Any) -> None:
        tokens = _normalize_tokens(payload)
        zeros = (
            np.zeros(self.hidden_dim, dtype=np.float32) if self.real else None
        )
        prev = None
        for token in tokens:
            inputs = {"ids": ValueInput(token)}
            if prev is None:
                inputs["h"] = ValueInput(zeros)
            else:
                inputs["h"] = NodeOutput(prev.node_id, "h")
            prev = graph.add_node(self._step_type, inputs)
        graph.mark_result(prev, "h")

    def phases(self, payload: Any) -> List[Tuple[str, int]]:
        return [(GRU_CELL, len(_normalize_tokens(payload)))]

    def default_cost_model(self) -> CostModel:
        model = CostModel()
        # A GRU step is ~3/4 of an LSTM step's arithmetic (3 gates vs 4).
        model.register(GRU_CELL, v100_lstm_step_table().scale(0.75, name="gru-step"))
        return model

    def reference_forward(self, payload: Any) -> Optional[List[Any]]:
        if not self.real:
            return None
        tokens = _normalize_tokens(payload)
        h = np.zeros((1, self.hidden_dim), dtype=np.float32)
        table = self.params.get("gru/embed/table")
        for token in tokens:
            x = table[np.asarray([token])]
            h = self._gru_cell({"x": x, "h": h})["h"]
        return [h[0]]

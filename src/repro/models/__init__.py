"""Model zoo: the paper's three applications plus extensions.

Each model bundles its cell types, the per-request unfolding function (the
user-provided code in BatchMaker's interface), the phase description the
padding baseline needs, and a reference forward pass used to verify that
batched serving produces bit-identical results.
"""

from repro.models.attention_seq2seq import AttentionSeq2SeqModel
from repro.models.base import Model
from repro.models.beam_seq2seq import BeamSeq2SeqModel
from repro.models.gru_chain import GRUChainModel
from repro.models.lstm_chain import LSTMChainModel
from repro.models.seq2seq import Seq2SeqModel
from repro.models.tree_lstm import TreeLSTMModel, TreePayload, TreeNodeSpec

__all__ = [
    "Model",
    "AttentionSeq2SeqModel",
    "BeamSeq2SeqModel",
    "GRUChainModel",
    "LSTMChainModel",
    "Seq2SeqModel",
    "TreeLSTMModel",
    "TreePayload",
    "TreeNodeSpec",
]

"""Chain-structured LSTM model (the paper's first application, §7.2).

A request is a token sequence; the unfolded cell graph is a single chain of
one cell type, so the whole request partitions into exactly one subgraph.
The benchmark configuration matches the paper: hidden size 1024, WMT-15-like
length distribution.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple

import numpy as np

from repro.cells.composite import CompositeCell
from repro.cells.embedding import EmbeddingCell
from repro.cells.lstm import LSTMCell
from repro.cells.projection import ProjectionCell
from repro.core.cell import CellType
from repro.core.cell_graph import CellGraph, NodeOutput, ValueInput
from repro.gpu.costmodel import CostModel, v100_lstm_step_table
from repro.models.base import Model
from repro.tensor.parameters import ParameterStore

LSTM_CELL = "lstm"
PROJECTION_CELL = "lstm_proj"


def _normalize_tokens(payload: Any) -> List[int]:
    """Accept either a token sequence or a bare length (simulation mode)."""
    if isinstance(payload, (int, np.integer)):
        if payload < 1:
            raise ValueError(f"sequence length must be >= 1, got {payload}")
        return [0] * int(payload)
    tokens = [int(t) for t in payload]
    if not tokens:
        raise ValueError("empty token sequence")
    return tokens


class LSTMChainModel(Model):
    """LSTM language model over token sequences.

    ``real=False`` (the benchmark default) registers the cell type without a
    compute body — timing comes from the calibrated cost model.  ``real=True``
    builds NumPy cells (embedding folded into the step cell, optionally a
    final projection) so serving produces actual hidden states/tokens.
    """

    def __init__(
        self,
        hidden_dim: int = 1024,
        vocab_size: int = 30000,
        embed_dim: Optional[int] = None,
        real: bool = False,
        project_output: bool = False,
        seed: int = 0,
    ):
        self.name = "lstm-chain"
        self.hidden_dim = hidden_dim
        self.vocab_size = vocab_size
        self.embed_dim = embed_dim if embed_dim is not None else hidden_dim
        self.real = real
        self.project_output = project_output
        self.params = ParameterStore(seed=seed)

        if real:
            embed = EmbeddingCell("lstm/embed", vocab_size, self.embed_dim, self.params)
            lstm = LSTMCell("lstm/step", self.embed_dim, hidden_dim, self.params)
            self._lstm_cell = lstm
            step = CompositeCell(
                LSTM_CELL,
                input_names=("ids", "h", "c"),
                output_names=("h", "c"),
                stages=[
                    (embed, {"ids": ("external", "ids")}),
                    (
                        lstm,
                        {
                            "x": ("stage", 0, "emb"),
                            "h": ("external", "h"),
                            "c": ("external", "c"),
                        },
                    ),
                ],
                exports={"h": ("stage", 1, "h"), "c": ("stage", 1, "c")},
            )
            self._step_type = CellType.from_cell(step)
            if project_output:
                proj = ProjectionCell(
                    "lstm/proj", hidden_dim, vocab_size, self.params
                )
                self._proj_type = CellType.from_cell(proj, name=PROJECTION_CELL)
            else:
                self._proj_type = None
        else:
            self._lstm_cell = None
            self._step_type = CellType(
                LSTM_CELL, ("ids", "h", "c"), ("h", "c"), num_operators=12
            )
            self._proj_type = (
                CellType(PROJECTION_CELL, ("h",), ("logits", "token"), num_operators=3)
                if project_output
                else None
            )

    # -- Model interface ---------------------------------------------------

    def cell_types(self) -> Sequence[CellType]:
        types = [self._step_type]
        if self._proj_type is not None:
            types.append(self._proj_type)
        return types

    def unfold(self, graph: CellGraph, payload: Any) -> None:
        tokens = _normalize_tokens(payload)
        zeros = self._zero_state_row()
        prev = None
        for token in tokens:
            inputs = {"ids": ValueInput(token)}
            if prev is None:
                inputs["h"] = ValueInput(zeros)
                inputs["c"] = ValueInput(zeros)
            else:
                inputs["h"] = NodeOutput(prev.node_id, "h")
                inputs["c"] = NodeOutput(prev.node_id, "c")
            prev = graph.add_node(self._step_type, inputs)
        if self._proj_type is not None:
            proj = graph.add_node(
                self._proj_type, {"h": NodeOutput(prev.node_id, "h")}
            )
            graph.mark_result(proj, "token")
        else:
            graph.mark_result(prev, "h")

    def phases(self, payload: Any) -> List[Tuple[str, int]]:
        steps = len(_normalize_tokens(payload))
        phase_list = [(LSTM_CELL, steps)]
        if self._proj_type is not None:
            phase_list.append((PROJECTION_CELL, 1))
        return phase_list

    def default_cost_model(self) -> CostModel:
        model = CostModel()
        table = v100_lstm_step_table()
        model.register(LSTM_CELL, table)
        if self._proj_type is not None:
            # Projection to the vocabulary costs roughly 2x a step at h=1024.
            model.register(PROJECTION_CELL, table.scale(2.0))
        return model

    def reference_forward(self, payload: Any) -> Optional[List[Any]]:
        if not self.real:
            return None
        tokens = _normalize_tokens(payload)
        h = np.zeros((1, self.hidden_dim), dtype=np.float32)
        c = np.zeros((1, self.hidden_dim), dtype=np.float32)
        table = self.params.get("lstm/embed/table")
        for token in tokens:
            x = table[np.asarray([token])]
            out = self._lstm_cell({"x": x, "h": h, "c": c})
            h, c = out["h"], out["c"]
        if self._proj_type is not None:
            logits = h @ self.params.get("lstm/proj/W") + self.params.get("lstm/proj/b")
            return [np.argmax(logits, axis=-1)[0]]
        return [h[0]]

    # -- internals -----------------------------------------------------------

    def _zero_state_row(self):
        if self.real:
            return np.zeros(self.hidden_dim, dtype=np.float32)
        return None

"""TreeLSTM model over binary parse trees (§7.5).

Two cell types: leaf (grey in the paper's Figure 2) and internal (white).
Unfolding a tree yields one single-node subgraph per leaf plus one subgraph
containing all internal nodes — the worked example of §4.4.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple

import numpy as np

from repro.cells.tree_lstm import TreeInternalCell, TreeLeafCell
from repro.core.cell import CellType
from repro.core.cell_graph import CellGraph, NodeOutput, ValueInput
from repro.gpu.costmodel import (
    CostModel,
    tree_internal_step_table,
    tree_leaf_step_table,
)
from repro.models.base import Model
from repro.tensor.parameters import ParameterStore

LEAF_CELL = "tree_leaf"
INTERNAL_CELL = "tree_internal"


class TreeNodeSpec:
    """A node of a binary parse tree: either a leaf with a token, or an
    internal node with exactly two children."""

    __slots__ = ("token", "left", "right")

    def __init__(
        self,
        token: Optional[int] = None,
        left: Optional["TreeNodeSpec"] = None,
        right: Optional["TreeNodeSpec"] = None,
    ):
        is_leaf = token is not None
        has_children = left is not None or right is not None
        if is_leaf and has_children:
            raise ValueError("a tree node is either a leaf or internal, not both")
        if not is_leaf and (left is None or right is None):
            raise ValueError("internal nodes need exactly two children")
        self.token = token
        self.left = left
        self.right = right

    @property
    def is_leaf(self) -> bool:
        return self.token is not None

    def num_leaves(self) -> int:
        if self.is_leaf:
            return 1
        return self.left.num_leaves() + self.right.num_leaves()

    def num_nodes(self) -> int:
        if self.is_leaf:
            return 1
        return 1 + self.left.num_nodes() + self.right.num_nodes()

    def depth(self) -> int:
        if self.is_leaf:
            return 1
        return 1 + max(self.left.depth(), self.right.depth())

    @classmethod
    def complete(cls, num_leaves: int, token: int = 0) -> "TreeNodeSpec":
        """A complete binary tree with ``num_leaves`` leaves (power of two),
        e.g. the 16-leaf tree of the paper's §4.4 and Figure 15."""
        if num_leaves < 1 or num_leaves & (num_leaves - 1):
            raise ValueError("num_leaves must be a positive power of two")
        if num_leaves == 1:
            return cls(token=token)
        half = num_leaves // 2
        return cls(left=cls.complete(half, token), right=cls.complete(half, token))


class TreePayload:
    """Request payload: the parse tree of one sentence."""

    def __init__(self, root: TreeNodeSpec):
        self.root = root

    def num_leaves(self) -> int:
        return self.root.num_leaves()

    def num_nodes(self) -> int:
        return self.root.num_nodes()

    def depth(self) -> int:
        return self.root.depth()


class TreeLSTMModel(Model):
    """Binary TreeLSTM (Tai et al.) for sentence classification."""

    def __init__(
        self,
        hidden_dim: int = 1024,
        vocab_size: int = 30000,
        embed_dim: Optional[int] = None,
        real: bool = False,
        seed: int = 0,
    ):
        self.name = "tree-lstm"
        self.hidden_dim = hidden_dim
        self.vocab_size = vocab_size
        self.embed_dim = embed_dim if embed_dim is not None else hidden_dim
        self.real = real
        self.params = ParameterStore(seed=seed)

        if real:
            leaf = TreeLeafCell(
                "tree/leaf", vocab_size, self.embed_dim, hidden_dim, self.params
            )
            internal = TreeInternalCell("tree/internal", hidden_dim, self.params)
            self._leaf_cell, self._internal_cell = leaf, internal
            self._leaf_type = CellType.from_cell(leaf, name=LEAF_CELL)
            self._internal_type = CellType.from_cell(internal, name=INTERNAL_CELL)
        else:
            self._leaf_cell = self._internal_cell = None
            self._leaf_type = CellType(LEAF_CELL, ("ids",), ("h", "c"), num_operators=8)
            self._internal_type = CellType(
                INTERNAL_CELL, ("h_l", "c_l", "h_r", "c_r"), ("h", "c"), num_operators=13
            )

    # -- Model interface -----------------------------------------------------

    def cell_types(self) -> Sequence[CellType]:
        return [self._leaf_type, self._internal_type]

    def unfold(self, graph: CellGraph, payload: Any) -> None:
        if not isinstance(payload, TreePayload):
            raise TypeError(f"TreeLSTM payload must be TreePayload, got {type(payload)}")
        root = self._unfold_node(graph, payload.root)
        graph.mark_result(root, "h")

    def _unfold_node(self, graph: CellGraph, spec: TreeNodeSpec):
        if spec.is_leaf:
            return graph.add_node(self._leaf_type, {"ids": ValueInput(spec.token)})
        left = self._unfold_node(graph, spec.left)
        right = self._unfold_node(graph, spec.right)
        return graph.add_node(
            self._internal_type,
            {
                "h_l": NodeOutput(left.node_id, "h"),
                "c_l": NodeOutput(left.node_id, "c"),
                "h_r": NodeOutput(right.node_id, "h"),
                "c_r": NodeOutput(right.node_id, "c"),
            },
        )

    def default_cost_model(self) -> CostModel:
        model = CostModel()
        model.register(LEAF_CELL, tree_leaf_step_table())
        model.register(INTERNAL_CELL, tree_internal_step_table())
        return model

    def reference_forward(self, payload: Any) -> Optional[List[Any]]:
        if not self.real:
            return None
        h, _ = self._forward_node(payload.root)
        return [h[0]]

    def _forward_node(self, spec: TreeNodeSpec) -> Tuple[np.ndarray, np.ndarray]:
        if spec.is_leaf:
            out = self._leaf_cell({"ids": np.asarray([spec.token])})
            return out["h"], out["c"]
        h_l, c_l = self._forward_node(spec.left)
        h_r, c_r = self._forward_node(spec.right)
        out = self._internal_cell(
            {"h_l": h_l, "c_l": c_l, "h_r": h_r, "c_r": c_r}
        )
        return out["h"], out["c"]

"""Model interface consumed by the serving engines.

This corresponds to the two things a BatchMaker user provides (§4.1): the
definition of each cell, and a function that unfolds each request into its
cell graph.  The extra hooks (``phases``, ``extend``, ``reference_forward``)
exist for the baselines, the dynamic-decoding extension, and correctness
testing respectively.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple

from repro.core.cell import CellType
from repro.core.cell_graph import CellGraph, CellNode


class Model:
    """A servable RNN model."""

    name: str = "model"

    # -- required --------------------------------------------------------------

    def cell_types(self) -> Sequence[CellType]:
        """All cell types this model unfolds into."""
        raise NotImplementedError

    def unfold(self, graph: CellGraph, payload: Any) -> None:
        """Build the request's cell graph (the paper's user-defined unfold
        function).  Must call ``graph.mark_result`` for the outputs that
        constitute the request's answer."""
        raise NotImplementedError

    # -- optional ----------------------------------------------------------------

    def extend(
        self, graph: CellGraph, completed: CellNode, payload: Any
    ) -> List[CellNode]:
        """Dynamic unfolding hook: called when ``completed`` finishes; may
        append new nodes (e.g. feed-previous decoding until <eos>).  The
        default is static unfolding: no growth."""
        return []

    def phases(self, payload: Any) -> List[Tuple[str, int]]:
        """``[(cell_type_name, steps), ...]`` description used by the padded
        (graph-batching) baseline.  Chain models return one phase; Seq2Seq
        returns encoder and decoder phases.  Models that padding cannot
        express (trees) raise ``NotImplementedError``, matching the paper's
        observation that padding does not support TreeLSTM."""
        raise NotImplementedError(
            f"model {self.name!r} does not support padding-based batching"
        )

    def reference_forward(self, payload: Any) -> Optional[List[Any]]:
        """Direct, unbatched forward pass for correctness checks (returns the
        same values ``CellGraph.collect_results`` would).  None when the
        model is simulation-only."""
        return None

    def default_cost_model(self):
        """Calibrated :class:`~repro.gpu.costmodel.CostModel` with a latency
        table registered for each of this model's cell types."""
        raise NotImplementedError

    # -- helpers -----------------------------------------------------------------

    def cell_type_by_name(self, name: str) -> CellType:
        for ct in self.cell_types():
            if ct.name == name:
                return ct
        raise KeyError(f"model {self.name!r} has no cell type {name!r}")

    def total_cells(self, payload: Any) -> int:
        """Number of cell invocations one request unfolds to (via phases if
        available, else by unfolding a throwaway graph)."""
        try:
            return sum(steps for _, steps in self.phases(payload))
        except NotImplementedError:
            graph = CellGraph()
            self.unfold(graph, payload)
            return len(graph)

"""Request-trace recording and replay.

A trace is a list of ``(arrival_time, payload)`` pairs.  Recording a trace
once and replaying it against several servers gives an exact
apples-to-apples comparison (the load generator otherwise re-samples the
dataset per run — identical given the same seed, but a trace makes the
equivalence explicit and persistable).

Traces serialise to JSON lines; tree payloads round-trip through a nested
token/children encoding.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterable, List, Tuple

from repro.models.tree_lstm import TreeNodeSpec, TreePayload
from repro.server import InferenceServer
from repro.workload.arrivals import PoissonArrivals


def _encode_payload(payload: Any) -> Any:
    if isinstance(payload, TreePayload):
        return {"__tree__": _encode_tree(payload.root)}
    if isinstance(payload, dict):
        return {"__dict__": payload}
    return payload


def _encode_tree(node: TreeNodeSpec) -> Any:
    if node.is_leaf:
        return {"token": node.token}
    return {"left": _encode_tree(node.left), "right": _encode_tree(node.right)}


def _decode_payload(raw: Any) -> Any:
    if isinstance(raw, dict) and "__tree__" in raw:
        return TreePayload(_decode_tree(raw["__tree__"]))
    if isinstance(raw, dict) and "__dict__" in raw:
        return raw["__dict__"]
    return raw


def _decode_tree(raw: Any) -> TreeNodeSpec:
    if "token" in raw:
        return TreeNodeSpec(token=raw["token"])
    return TreeNodeSpec(
        left=_decode_tree(raw["left"]), right=_decode_tree(raw["right"])
    )


class RequestTrace:
    """An immutable, replayable sequence of timed requests."""

    def __init__(self, entries: Iterable[Tuple[float, Any]]):
        self.entries: List[Tuple[float, Any]] = sorted(entries, key=lambda e: e[0])
        for t, _ in self.entries:
            if t < 0:
                raise ValueError("arrival times must be non-negative")

    @classmethod
    def record(
        cls,
        dataset: Any,
        rate: float,
        num_requests: int,
        seed: int = 0,
    ) -> "RequestTrace":
        """Sample a Poisson trace from a dataset (the load generator's
        sampling, captured)."""
        times = PoissonArrivals(rate, seed=seed).times(num_requests)
        return cls((t, dataset.sample_one()) for t in times)

    def __len__(self) -> int:
        return len(self.entries)

    def duration(self) -> float:
        return self.entries[-1][0] if self.entries else 0.0

    def replay(self, server: InferenceServer, drain: bool = True) -> List:
        """Submit every entry to ``server``; returns the request handles."""
        requests = [
            server.submit(payload, arrival_time=t) for t, payload in self.entries
        ]
        if drain:
            server.drain()
        return requests

    # -- persistence -------------------------------------------------------------

    def save(self, path) -> None:
        with open(Path(path), "w") as f:
            for t, payload in self.entries:
                f.write(
                    json.dumps({"t": t, "payload": _encode_payload(payload)}) + "\n"
                )

    @classmethod
    def load(cls, path) -> "RequestTrace":
        entries = []
        with open(Path(path)) as f:
            for line in f:
                line = line.strip()
                if not line:
                    continue
                record = json.loads(line)
                entries.append((record["t"], _decode_payload(record["payload"])))
        return cls(entries)

"""Sentence-length distribution calibrated to WMT-15 Europarl.

The paper reports (§7.1, Figure 10): 100k sampled sentences, average length
24, maximum length 330, and "about 99 percent of sequences have length less
than 100".  A clipped log-normal reproduces all three statistics:

    length = clip(round(LogNormal(mu=log 19, sigma=0.68)), 1, 330)

which gives mean ~24, p99 ~93 and a long thin tail to the 330 clip.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np


class WMTLengthSampler:
    """Seeded sampler of WMT-15-Europarl-like sentence lengths.

    ``max_length`` below 330 emulates the paper's Figure 11 clipped
    variants (max 50 and max 100); samples above the cap are clipped, not
    rejected, matching how the paper "sample[s] two different datasets ...
    by clipping the maximum sequence length".
    """

    MEDIAN = 19.0
    SIGMA = 0.68
    HARD_MAX = 330

    def __init__(self, seed: int = 0, max_length: int = HARD_MAX):
        if not 1 <= max_length <= self.HARD_MAX:
            raise ValueError(
                f"max_length must be in [1, {self.HARD_MAX}], got {max_length}"
            )
        self._rng = np.random.default_rng(seed)
        self.max_length = max_length

    def sample(self, n: int = 1) -> np.ndarray:
        """Draw ``n`` integer lengths."""
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        raw = self._rng.lognormal(np.log(self.MEDIAN), self.SIGMA, size=n)
        return np.clip(np.rint(raw), 1, self.max_length).astype(np.int64)

    def sample_one(self) -> int:
        return int(self.sample(1)[0])


def length_cdf(lengths: Sequence[int]) -> List[tuple]:
    """Empirical CDF points [(length, cumulative fraction)] — Figure 10."""
    if len(lengths) == 0:
        raise ValueError("need at least one length")
    values, counts = np.unique(np.asarray(lengths), return_counts=True)
    cum = np.cumsum(counts) / len(lengths)
    return list(zip(values.tolist(), cum.tolist()))

"""TreeBank-like random binary parse trees.

The Stanford Sentiment TreeBank the paper uses contains ~10k binary parse
trees of English sentences.  We substitute seeded random binary trees whose
leaf counts follow a sentence-length-like distribution (mean ~20, clipped)
and whose shapes are uniformly random binary bracketings — the two
properties (size distribution, shape variety) the scheduling behaviour
depends on.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.models.tree_lstm import TreeNodeSpec, TreePayload


def random_parse_tree(
    rng: np.random.Generator,
    num_leaves: int,
    vocab_size: int = 30000,
) -> TreePayload:
    """A uniformly random binary bracketing over ``num_leaves`` tokens."""
    if num_leaves < 1:
        raise ValueError(f"num_leaves must be >= 1, got {num_leaves}")

    def build(count: int) -> TreeNodeSpec:
        if count == 1:
            return TreeNodeSpec(token=int(rng.integers(0, vocab_size)))
        split = int(rng.integers(1, count))
        return TreeNodeSpec(left=build(split), right=build(count - split))

    return TreePayload(build(num_leaves))


class TreeBankSampler:
    """Seeded sampler of TreeBank-like parse-tree payloads.

    Leaf counts are drawn from a clipped log-normal with median 18 and
    sigma 0.5 (mean ~20, max 70), close to the SST sentence statistics.
    """

    MEDIAN = 18.0
    SIGMA = 0.5

    def __init__(
        self,
        seed: int = 0,
        vocab_size: int = 30000,
        max_leaves: int = 70,
        fixed_leaves: Optional[int] = None,
    ):
        if max_leaves < 1:
            raise ValueError("max_leaves must be >= 1")
        self._rng = np.random.default_rng(seed)
        self.vocab_size = vocab_size
        self.max_leaves = max_leaves
        self.fixed_leaves = fixed_leaves

    def sample_one(self) -> TreePayload:
        if self.fixed_leaves is not None:
            count = self.fixed_leaves
        else:
            raw = self._rng.lognormal(np.log(self.MEDIAN), self.SIGMA)
            count = int(np.clip(np.rint(raw), 1, self.max_leaves))
        return random_parse_tree(self._rng, count, self.vocab_size)

"""Arrival processes.

The paper issues requests "with Poisson inter-arrival times", adjusting the
average inter-arrival time to sweep load (§7.1).
"""

from __future__ import annotations

import math
from typing import Iterator, List

import numpy as np


class PoissonArrivals:
    """Seeded open-loop Poisson arrival process at ``rate`` requests/second."""

    def __init__(self, rate: float, seed: int = 0, start: float = 0.0):
        if rate <= 0:
            raise ValueError(f"arrival rate must be positive, got {rate}")
        self.rate = rate
        self.start = start
        self._rng = np.random.default_rng(seed)

    def times(self, n: int) -> List[float]:
        """The first ``n`` arrival timestamps."""
        if n < 0:
            raise ValueError("n must be non-negative")
        gaps = self._rng.exponential(1.0 / self.rate, size=n)
        return (self.start + np.cumsum(gaps)).tolist()

    def stream(self) -> Iterator[float]:
        """Unbounded arrival-time generator."""
        t = self.start
        while True:
            t += float(self._rng.exponential(1.0 / self.rate))
            yield t


class BurstyArrivals:
    """Two-state Markov-modulated Poisson process (extension beyond the
    paper's Poisson-only workload).

    Alternates between a *calm* state at ``rate * (1 - burst_boost)``-ish
    and a *burst* state at an elevated rate, such that the long-run average
    rate equals ``rate``.  Used to probe how batching policies cope with
    arrival-correlation — cellular batching's join-anytime property pays
    off most under bursts.
    """

    def __init__(
        self,
        rate: float,
        seed: int = 0,
        start: float = 0.0,
        burst_factor: float = 4.0,
        burst_fraction: float = 0.2,
        mean_dwell: float = 50e-3,
    ):
        if rate <= 0:
            raise ValueError(f"arrival rate must be positive, got {rate}")
        if burst_factor < 1:
            raise ValueError("burst_factor must be >= 1")
        if not 0 < burst_fraction < 1:
            raise ValueError("burst_fraction must be in (0, 1)")
        if mean_dwell <= 0:
            raise ValueError("mean_dwell must be positive")
        self.rate = rate
        self.start = start
        self.burst_rate = rate * burst_factor
        # Calm rate chosen so the time-weighted average equals `rate`.
        calm = (rate - burst_fraction * self.burst_rate) / (1 - burst_fraction)
        if calm <= 0:
            raise ValueError(
                "burst_factor * burst_fraction must stay below 1 to keep the "
                "calm-state rate positive"
            )
        self.calm_rate = calm
        self.burst_fraction = burst_fraction
        self.mean_dwell = mean_dwell
        self._rng = np.random.default_rng(seed)

    def times(self, n: int) -> List[float]:
        """The first ``n`` arrival timestamps."""
        if n < 0:
            raise ValueError("n must be non-negative")
        times: List[float] = []
        t = self.start
        in_burst = False
        state_ends = t + float(
            self._rng.exponential(self.mean_dwell * (1 - self.burst_fraction))
        )
        while len(times) < n:
            current = self.burst_rate if in_burst else self.calm_rate
            t += float(self._rng.exponential(1.0 / current))
            while t >= state_ends:
                in_burst = not in_burst
                dwell = self.mean_dwell * (
                    self.burst_fraction if in_burst else (1 - self.burst_fraction)
                )
                state_ends += float(self._rng.exponential(dwell))
            times.append(t)
        return times


class DiurnalArrivals:
    """Sinusoidal rate modulation over an MMPP base (day/night traffic).

    A two-state MMPP base process (:class:`BurstyArrivals`) runs at
    ``rate * (1 + amplitude)``; each candidate arrival at time ``t`` is then
    kept with probability::

        (1 + amplitude * sin(2*pi*t/period + phase)) / (1 + amplitude)

    Thinning a point process by a function bounded by 1 yields exactly the
    modulated intensity, so the long-run average rate is the nominal
    ``rate`` by construction (property-tested) while short-horizon
    burstiness comes from the MMPP base and the slow diurnal swing from the
    sinusoid.  With ``amplitude=0`` this degenerates to the plain MMPP at
    ``rate``.  Seed-deterministic: one ``default_rng(seed)`` drives the
    base (seed) and the thinning draws (seed + 1).
    """

    def __init__(
        self,
        rate: float,
        seed: int = 0,
        start: float = 0.0,
        period: float = 60.0,
        amplitude: float = 0.6,
        phase: float = 0.0,
        burst_factor: float = 4.0,
        burst_fraction: float = 0.2,
        mean_dwell: float = 50e-3,
    ):
        if rate <= 0:
            raise ValueError(f"arrival rate must be positive, got {rate}")
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        if not 0 <= amplitude < 1:
            raise ValueError(f"amplitude must be in [0, 1), got {amplitude}")
        self.rate = rate
        self.seed = seed
        self.start = start
        self.period = period
        self.amplitude = amplitude
        self.phase = phase
        self.burst_factor = burst_factor
        self.burst_fraction = burst_fraction
        self.mean_dwell = mean_dwell
        # Validate the MMPP knobs eagerly (BurstyArrivals raises on bad
        # combinations) rather than at first times() call.
        self._make_base()

    def _make_base(self) -> BurstyArrivals:
        return BurstyArrivals(
            self.rate * (1 + self.amplitude),
            seed=self.seed,
            start=self.start,
            burst_factor=self.burst_factor,
            burst_fraction=self.burst_fraction,
            mean_dwell=self.mean_dwell,
        )

    def _keep_probability(self, t: float) -> float:
        swing = self.amplitude * math.sin(
            2 * math.pi * t / self.period + self.phase
        )
        return (1 + swing) / (1 + self.amplitude)

    def times(self, n: int) -> List[float]:
        """The first ``n`` arrival timestamps (restarts from ``start``)."""
        if n < 0:
            raise ValueError("n must be non-negative")
        if n == 0:
            return []
        # Thinning keeps 1/(1 + amplitude) of candidates on average; draw
        # with headroom and redraw the whole (deterministic) candidate
        # sequence larger if a trough left us short.
        draw = max(16, int(n * (1 + self.amplitude) * 1.25) + 8)
        while True:
            candidates = self._make_base().times(draw)
            accept = np.random.default_rng(self.seed + 1).random(draw)
            times = [
                t
                for t, u in zip(candidates, accept)
                if u < self._keep_probability(t)
            ]
            if len(times) >= n:
                return times[:n]
            draw *= 2


# Registry: arrival processes addressable by name from specs and CLIs.
ARRIVALS = {
    "poisson": PoissonArrivals,
    "bursty": BurstyArrivals,
    "diurnal": DiurnalArrivals,
}


def make_arrivals(name: str, rate: float, seed: int = 0, **params):
    """Build a registered arrival process (``poisson``/``bursty``/``diurnal``)."""
    try:
        cls = ARRIVALS[name]
    except KeyError:
        raise ValueError(
            f"unknown arrival process {name!r}; expected one of "
            f"{sorted(ARRIVALS)}"
        ) from None
    return cls(rate, seed=seed, **params)

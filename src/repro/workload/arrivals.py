"""Arrival processes.

The paper issues requests "with Poisson inter-arrival times", adjusting the
average inter-arrival time to sweep load (§7.1).
"""

from __future__ import annotations

from typing import Iterator, List

import numpy as np


class PoissonArrivals:
    """Seeded open-loop Poisson arrival process at ``rate`` requests/second."""

    def __init__(self, rate: float, seed: int = 0, start: float = 0.0):
        if rate <= 0:
            raise ValueError(f"arrival rate must be positive, got {rate}")
        self.rate = rate
        self.start = start
        self._rng = np.random.default_rng(seed)

    def times(self, n: int) -> List[float]:
        """The first ``n`` arrival timestamps."""
        if n < 0:
            raise ValueError("n must be non-negative")
        gaps = self._rng.exponential(1.0 / self.rate, size=n)
        return (self.start + np.cumsum(gaps)).tolist()

    def stream(self) -> Iterator[float]:
        """Unbounded arrival-time generator."""
        t = self.start
        while True:
            t += float(self._rng.exponential(1.0 / self.rate))
            yield t


class BurstyArrivals:
    """Two-state Markov-modulated Poisson process (extension beyond the
    paper's Poisson-only workload).

    Alternates between a *calm* state at ``rate * (1 - burst_boost)``-ish
    and a *burst* state at an elevated rate, such that the long-run average
    rate equals ``rate``.  Used to probe how batching policies cope with
    arrival-correlation — cellular batching's join-anytime property pays
    off most under bursts.
    """

    def __init__(
        self,
        rate: float,
        seed: int = 0,
        start: float = 0.0,
        burst_factor: float = 4.0,
        burst_fraction: float = 0.2,
        mean_dwell: float = 50e-3,
    ):
        if rate <= 0:
            raise ValueError(f"arrival rate must be positive, got {rate}")
        if burst_factor < 1:
            raise ValueError("burst_factor must be >= 1")
        if not 0 < burst_fraction < 1:
            raise ValueError("burst_fraction must be in (0, 1)")
        if mean_dwell <= 0:
            raise ValueError("mean_dwell must be positive")
        self.rate = rate
        self.start = start
        self.burst_rate = rate * burst_factor
        # Calm rate chosen so the time-weighted average equals `rate`.
        calm = (rate - burst_fraction * self.burst_rate) / (1 - burst_fraction)
        if calm <= 0:
            raise ValueError(
                "burst_factor * burst_fraction must stay below 1 to keep the "
                "calm-state rate positive"
            )
        self.calm_rate = calm
        self.burst_fraction = burst_fraction
        self.mean_dwell = mean_dwell
        self._rng = np.random.default_rng(seed)

    def times(self, n: int) -> List[float]:
        """The first ``n`` arrival timestamps."""
        if n < 0:
            raise ValueError("n must be non-negative")
        times: List[float] = []
        t = self.start
        in_burst = False
        state_ends = t + float(
            self._rng.exponential(self.mean_dwell * (1 - self.burst_fraction))
        )
        while len(times) < n:
            current = self.burst_rate if in_burst else self.calm_rate
            t += float(self._rng.exponential(1.0 / current))
            while t >= state_ends:
                in_burst = not in_burst
                dwell = self.mean_dwell * (
                    self.burst_fraction if in_burst else (1 - self.burst_fraction)
                )
                state_ends += float(self._rng.exponential(dwell))
            times.append(t)
        return times

"""``python -m repro.workload`` — the one-shot load-point CLI.

Thin entry point over :func:`repro.workload.loadgen.main`; running the
package (instead of ``-m repro.workload.loadgen``) avoids the
found-in-sys.modules RuntimeWarning for a module the package already
imports.
"""

import sys

from repro.workload.loadgen import main

if __name__ == "__main__":
    sys.exit(main())

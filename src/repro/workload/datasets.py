"""Dataset abstractions: seeded payload samplers per application.

A dataset is anything with ``sample_one() -> payload``; the load generator
draws one payload per arrival, matching the paper's "we sample a request
from the dataset and issue it to the system with Poisson inter-arrival
times".
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from repro.models.tree_lstm import TreePayload
from repro.workload.lengths import WMTLengthSampler
from repro.workload.trees import TreeBankSampler


class SequenceDataset:
    """Token-length payloads for the chain LSTM (WMT-15-like lengths).

    Payloads are bare integer lengths (the simulation-only LSTM model
    accepts them directly); pass ``emit_tokens=True`` to produce actual
    token-id lists for real-compute serving.
    """

    def __init__(
        self,
        seed: int = 0,
        max_length: int = WMTLengthSampler.HARD_MAX,
        emit_tokens: bool = False,
        vocab_size: int = 30000,
    ):
        self._lengths = WMTLengthSampler(seed=seed, max_length=max_length)
        self._rng = np.random.default_rng(seed + 1)
        self.emit_tokens = emit_tokens
        self.vocab_size = vocab_size

    def sample_one(self) -> Any:
        length = self._lengths.sample_one()
        if not self.emit_tokens:
            return length
        return [int(t) for t in self._rng.integers(0, self.vocab_size, size=length)]


class FixedLengthDataset:
    """Every request has the same length — the paper's Figure 11 (top)
    artificial dataset with fixed length 24."""

    def __init__(self, length: int = 24):
        if length < 1:
            raise ValueError("length must be >= 1")
        self.length = length

    def sample_one(self) -> int:
        return self.length


class Seq2SeqDataset:
    """German-English-like sentence pairs for Seq2Seq.

    Source lengths follow the WMT-15 distribution; target lengths are the
    source length perturbed by a small multiplicative factor (translations
    are roughly length-preserving).  The decode length is carried in the
    payload because the paper "decode[s] for a number of steps equal to the
    corresponding English sequence length" while never using that knowledge
    for scheduling.

    With ``dynamic=True`` the payload instead requests feed-previous
    decoding with the sampled target length as the decode *budget*
    (``max_decode``): the graph grows one decoder step at a time and the
    scheduler cannot know the final length up front — the continuous
    batching workload of DESIGN.md §15.
    """

    def __init__(
        self,
        seed: int = 0,
        max_length: int = WMTLengthSampler.HARD_MAX,
        dynamic: bool = False,
    ):
        self._lengths = WMTLengthSampler(seed=seed, max_length=max_length)
        self._rng = np.random.default_rng(seed + 1)
        self.max_length = max_length
        self.dynamic = dynamic

    def sample_one(self) -> dict:
        src_len = self._lengths.sample_one()
        ratio = float(np.clip(self._rng.normal(1.0, 0.15), 0.6, 1.6))
        tgt_len = int(np.clip(round(src_len * ratio), 1, self.max_length))
        if self.dynamic:
            return {"src": src_len, "dynamic": True, "max_decode": tgt_len}
        return {"src": src_len, "tgt_len": tgt_len}


class TreeDataset:
    """TreeBank-like parse trees for TreeLSTM; ``fixed_leaves`` yields the
    identical complete binary tree every time (the paper's Figure 15)."""

    def __init__(
        self,
        seed: int = 0,
        vocab_size: int = 30000,
        fixed_complete_leaves: Optional[int] = None,
    ):
        self._fixed_complete = fixed_complete_leaves
        self._sampler = TreeBankSampler(seed=seed, vocab_size=vocab_size)

    def sample_one(self) -> TreePayload:
        if self._fixed_complete is not None:
            from repro.models.tree_lstm import TreeNodeSpec

            return TreePayload(TreeNodeSpec.complete(self._fixed_complete))
        return self._sampler.sample_one()

"""Open-loop load generator.

Drives any :class:`~repro.server.InferenceServer` with Poisson arrivals
drawn from a dataset, discards a warmup prefix, and summarises latency and
achieved throughput — the measurement loop behind every serving figure in
the paper's evaluation.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.metrics.latency import LatencyStats
from repro.metrics.summary import RunSummary
from repro.server import InferenceServer
from repro.workload.arrivals import PoissonArrivals


class RunResult:
    """Everything one load point produced."""

    def __init__(
        self,
        summary: RunSummary,
        stats: LatencyStats,
        server: InferenceServer,
        duration: float,
    ):
        self.summary = summary
        self.stats = stats
        self.server = server
        self.duration = duration


class LoadGenerator:
    """Submit ``num_requests`` Poisson arrivals and measure the outcome.

    ``warmup_fraction`` of the earliest-arriving requests are excluded from
    the statistics (they see an empty system); throughput is measured over
    the finish-time span of the measured requests.
    """

    def __init__(
        self,
        rate: float,
        num_requests: int,
        seed: int = 0,
        warmup_fraction: float = 0.1,
    ):
        if num_requests < 1:
            raise ValueError("num_requests must be >= 1")
        if not 0 <= warmup_fraction < 1:
            raise ValueError("warmup_fraction must be in [0, 1)")
        self.rate = rate
        self.num_requests = num_requests
        self.seed = seed
        self.warmup_fraction = warmup_fraction

    def run(
        self,
        server: InferenceServer,
        dataset: Any,
        deadline: Optional[float] = None,
    ) -> RunResult:
        """Run the experiment to completion (or ``deadline`` virtual seconds)."""
        arrivals = PoissonArrivals(self.rate, seed=self.seed)
        times = arrivals.times(self.num_requests)
        for when in times:
            server.submit(dataset.sample_one(), arrival_time=when)
        server.drain(until=deadline)

        warmup_cutoff = int(self.num_requests * self.warmup_fraction)
        measured = [
            r
            for r in server.finished
            if r.request_id >= warmup_cutoff
        ]
        if not measured:
            raise RuntimeError(
                f"no requests finished after warmup on {server.name!r} "
                f"(rate={self.rate}, n={self.num_requests}) — the system is "
                "overloaded for this horizon"
            )
        stats = LatencyStats().extend(measured)
        first = min(r.arrival_time for r in measured)
        last = max(r.finish_time for r in measured)
        span = max(last - first, 1e-9)
        throughput = len(measured) / span
        extras = {}
        timed_out = getattr(server, "timed_out", ())
        rejected = getattr(server, "rejected", ())
        retries = sum(r.retries for r in server.terminal_requests())
        if timed_out or rejected or retries:
            # SLA outcomes (post-warmup), so fault sweeps can plot goodput
            # and shed/timeout rates next to the latency percentiles.
            extras["timed_out"] = float(
                sum(1 for r in timed_out if r.request_id >= warmup_cutoff)
            )
            extras["rejected"] = float(
                sum(1 for r in rejected if r.request_id >= warmup_cutoff)
            )
            extras["retries"] = float(retries)
        summary = RunSummary(
            system=server.name,
            offered_rate=self.rate,
            throughput=throughput,
            stats=stats,
        )
        summary.extras.update(extras)
        return RunResult(summary, stats, server, duration=last)

"""Open-loop load generator.

Drives any :class:`~repro.server.InferenceServer` with Poisson arrivals
drawn from a dataset, discards a warmup prefix, and summarises latency and
achieved throughput — the measurement loop behind every serving figure in
the paper's evaluation.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

from repro.metrics.latency import LatencyStats
from repro.metrics.summary import RunSummary
from repro.server import InferenceServer
from repro.workload.arrivals import make_arrivals


class RunResult:
    """Everything one load point produced."""

    def __init__(
        self,
        summary: RunSummary,
        stats: LatencyStats,
        server: InferenceServer,
        duration: float,
    ):
        self.summary = summary
        self.stats = stats
        self.server = server
        self.duration = duration


class LoadGenerator:
    """Submit ``num_requests`` arrivals and measure the outcome.

    ``arrivals`` selects the registered arrival process (``poisson``, the
    paper's default, or ``bursty`` / ``diurnal``; ``arrival_params`` are
    forwarded to its constructor).  ``warmup_fraction`` of the
    earliest-arriving requests are excluded from the statistics (they see
    an empty system); throughput is measured over the finish-time span of
    the measured requests.
    """

    def __init__(
        self,
        rate: float,
        num_requests: int,
        seed: int = 0,
        warmup_fraction: float = 0.1,
        arrivals: str = "poisson",
        arrival_params: Optional[dict] = None,
    ):
        if num_requests < 1:
            raise ValueError("num_requests must be >= 1")
        if not 0 <= warmup_fraction < 1:
            raise ValueError("warmup_fraction must be in [0, 1)")
        self.rate = rate
        self.num_requests = num_requests
        self.seed = seed
        self.warmup_fraction = warmup_fraction
        self.arrivals = arrivals
        self.arrival_params = dict(arrival_params or {})
        # Fail fast on an unknown process or bad knobs.
        make_arrivals(arrivals, rate, seed=seed, **self.arrival_params)

    def plan(self, dataset: Any) -> List[Tuple[float, Any]]:
        """The exact ``(arrival_time, payload)`` sequence :meth:`run` would
        submit: arrivals from the seeded Poisson process, one dataset
        sample per arrival, in arrival order.

        This is the workload's *identity* — the live serving loadgen
        (:mod:`repro.serve.loadgen`) replays the same plan over real
        sockets, which is what makes sim-vs-live parity a like-for-like
        comparison (same seed -> same payload at the same offset in both
        worlds).
        """
        arrivals = make_arrivals(
            self.arrivals, self.rate, seed=self.seed, **self.arrival_params
        )
        times = arrivals.times(self.num_requests)
        return [(when, dataset.sample_one()) for when in times]

    def run(
        self,
        server: InferenceServer,
        dataset: Any,
        deadline: Optional[float] = None,
    ) -> RunResult:
        """Run the experiment to completion (or ``deadline`` virtual seconds)."""
        for when, payload in self.plan(dataset):
            server.submit(payload, arrival_time=when)
        server.drain(until=deadline)

        warmup_cutoff = int(self.num_requests * self.warmup_fraction)
        measured = [
            r
            for r in server.finished
            if r.request_id >= warmup_cutoff
        ]
        if not measured:
            raise RuntimeError(
                f"no requests finished after warmup on {server.name!r} "
                f"(rate={self.rate}, n={self.num_requests}) — the system is "
                "overloaded for this horizon"
            )
        stats = LatencyStats().extend(measured)
        first = min(r.arrival_time for r in measured)
        last = max(r.finish_time for r in measured)
        span = max(last - first, 1e-9)
        throughput = len(measured) / span
        extras = {}
        timed_out = getattr(server, "timed_out", ())
        rejected = getattr(server, "rejected", ())
        retries = sum(r.retries for r in server.terminal_requests())
        if timed_out or rejected or retries:
            # SLA outcomes (post-warmup), so fault sweeps can plot goodput
            # and shed/timeout rates next to the latency percentiles.
            extras["timed_out"] = float(
                sum(1 for r in timed_out if r.request_id >= warmup_cutoff)
            )
            extras["rejected"] = float(
                sum(1 for r in rejected if r.request_id >= warmup_cutoff)
            )
            extras["retries"] = float(retries)
        joules = getattr(server, "energy_joules", None)
        if joules is not None:
            total = joules()
            if total > 0:
                # Integrated fleet energy at drain, plus the per-request
                # figure energy sweeps plot against p99 (whole-run joules
                # over measured requests — idle power is a real cost of
                # serving the measured traffic).
                extras["energy_joules"] = total
                extras["joules_per_request"] = total / len(measured)
        summary = RunSummary(
            system=server.name,
            offered_rate=self.rate,
            throughput=throughput,
            stats=stats,
        )
        summary.extras.update(extras)
        return RunResult(summary, stats, server, duration=last)


def main(argv=None) -> int:
    """CLI: one traced load point (``python -m repro.workload.loadgen``).

    Builds a preset server, drives it at ``--rate``, prints the summary,
    and with ``--trace PATH`` writes the run's Chrome trace JSON to exactly
    that path (open it in Perfetto / ``chrome://tracing``).
    """
    import argparse

    # Lazy: the factories live above this module in the import graph.
    from repro.experiments import common
    from repro.workload.datasets import (
        Seq2SeqDataset,
        SequenceDataset,
        TreeDataset,
    )

    presets = {
        "lstm_batchmaker": (common.lstm_batchmaker, SequenceDataset),
        "lstm_mxnet": (lambda: common.lstm_padded("MXNet"), SequenceDataset),
        "lstm_tensorflow": (
            lambda: common.lstm_padded("TensorFlow"),
            SequenceDataset,
        ),
        "seq2seq_batchmaker": (common.seq2seq_batchmaker, Seq2SeqDataset),
        "tree_batchmaker": (common.tree_batchmaker, TreeDataset),
    }
    parser = argparse.ArgumentParser(
        description="Drive one server at one load point and optionally "
        "export its execution trace."
    )
    parser.add_argument(
        "--server", default="lstm_batchmaker", choices=sorted(presets)
    )
    parser.add_argument("--rate", type=float, default=5000.0, metavar="REQ_S")
    parser.add_argument("--num-requests", type=int, default=2000, metavar="N")
    parser.add_argument("--seed", type=int, default=0, help="arrival seed")
    parser.add_argument("--dataset-seed", type=int, default=1)
    parser.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="write the run's Chrome trace JSON to this exact path",
    )
    parser.add_argument(
        "--trace-sample",
        type=int,
        default=1,
        metavar="K",
        help="with --trace, keep spans for every Kth request id (default 1)",
    )
    args = parser.parse_args(argv)
    if args.trace_sample < 1:
        parser.error(f"--trace-sample must be >= 1, got {args.trace_sample}")

    server_factory, dataset_cls = presets[args.server]
    server = server_factory()
    recorder = None
    if args.trace is not None:
        from repro.trace import TraceRecorder

        recorder = TraceRecorder(server.loop, sample_every=args.trace_sample)
        server.attach_trace(recorder)
    generator = LoadGenerator(
        rate=args.rate, num_requests=args.num_requests, seed=args.seed
    )
    result = generator.run(server, dataset_cls(seed=args.dataset_seed))
    s = result.summary
    print(
        f"{s.system}: offered {s.offered_rate:.0f} req/s, achieved "
        f"{s.throughput:.0f} req/s, p50 {s.p50_ms:.2f} ms, "
        f"p90 {s.p90_ms:.2f} ms, p99 {s.p99_ms:.2f} ms"
    )
    if recorder is not None:
        import os

        parent = os.path.dirname(args.trace)
        if parent:
            os.makedirs(parent, exist_ok=True)
        count = recorder.export_chrome(args.trace)
        print(f"[trace -> {args.trace} ({count} events)]")
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())

"""Workload generation: datasets, arrival processes, and the load generator.

The paper's datasets (WMT-15 Europarl sentences, Stanford TreeBank parse
trees) are substituted with seeded synthetic equivalents calibrated to the
statistics the paper publishes; see DESIGN.md for the substitution table.
"""

from repro.workload.arrivals import PoissonArrivals
from repro.workload.datasets import (
    FixedLengthDataset,
    Seq2SeqDataset,
    SequenceDataset,
    TreeDataset,
)
from repro.workload.lengths import WMTLengthSampler
from repro.workload.loadgen import LoadGenerator, RunResult
from repro.workload.trace import RequestTrace
from repro.workload.trees import random_parse_tree

__all__ = [
    "PoissonArrivals",
    "WMTLengthSampler",
    "SequenceDataset",
    "FixedLengthDataset",
    "Seq2SeqDataset",
    "TreeDataset",
    "random_parse_tree",
    "LoadGenerator",
    "RunResult",
    "RequestTrace",
]

"""Minimal SVG document builder."""

from __future__ import annotations

import html
from typing import List, Optional, Sequence, Tuple


class SvgCanvas:
    """Accumulates SVG elements and serialises a standalone document."""

    def __init__(self, width: int, height: int, background: str = "white"):
        if width <= 0 or height <= 0:
            raise ValueError("canvas dimensions must be positive")
        self.width = width
        self.height = height
        self._elements: List[str] = []
        if background:
            self.rect(0, 0, width, height, fill=background, stroke="none")

    # -- primitives -------------------------------------------------------------

    def line(
        self,
        x1: float,
        y1: float,
        x2: float,
        y2: float,
        stroke: str = "black",
        width: float = 1.0,
        dash: Optional[str] = None,
    ) -> None:
        dash_attr = f' stroke-dasharray="{dash}"' if dash else ""
        self._elements.append(
            f'<line x1="{x1:.2f}" y1="{y1:.2f}" x2="{x2:.2f}" y2="{y2:.2f}" '
            f'stroke="{stroke}" stroke-width="{width}"{dash_attr}/>'
        )

    def polyline(
        self,
        points: Sequence[Tuple[float, float]],
        stroke: str = "black",
        width: float = 1.5,
    ) -> None:
        if len(points) < 2:
            raise ValueError("polyline needs at least two points")
        text = " ".join(f"{x:.2f},{y:.2f}" for x, y in points)
        self._elements.append(
            f'<polyline points="{text}" fill="none" stroke="{stroke}" '
            f'stroke-width="{width}"/>'
        )

    def circle(
        self, cx: float, cy: float, r: float, fill: str = "black"
    ) -> None:
        self._elements.append(
            f'<circle cx="{cx:.2f}" cy="{cy:.2f}" r="{r:.2f}" fill="{fill}"/>'
        )

    def rect(
        self,
        x: float,
        y: float,
        width: float,
        height: float,
        fill: str = "none",
        stroke: str = "black",
    ) -> None:
        self._elements.append(
            f'<rect x="{x:.2f}" y="{y:.2f}" width="{width:.2f}" '
            f'height="{height:.2f}" fill="{fill}" stroke="{stroke}"/>'
        )

    def text(
        self,
        x: float,
        y: float,
        content: str,
        size: int = 12,
        anchor: str = "start",
        rotate: Optional[float] = None,
        fill: str = "black",
    ) -> None:
        transform = (
            f' transform="rotate({rotate:.1f} {x:.2f} {y:.2f})"' if rotate else ""
        )
        self._elements.append(
            f'<text x="{x:.2f}" y="{y:.2f}" font-size="{size}" '
            f'font-family="sans-serif" text-anchor="{anchor}" '
            f'fill="{fill}"{transform}>{html.escape(content)}</text>'
        )

    # -- output ------------------------------------------------------------------

    def render(self) -> str:
        body = "\n".join(self._elements)
        return (
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{self.width}" '
            f'height="{self.height}" viewBox="0 0 {self.width} {self.height}">\n'
            f"{body}\n</svg>\n"
        )

    def save(self, path) -> None:
        with open(path, "w") as f:
            f.write(self.render())

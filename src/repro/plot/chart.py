"""Charting: the :class:`Chart` core (series + axes -> SVG) plus the
figure-shaped builders (``sweep_chart`` / ``cdf_chart`` / ``timeline_chart``)
the experiment harness renders with."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.plot.axes import Axis
from repro.plot.svg import SvgCanvas

# A colour cycle that survives grayscale printing reasonably well.
PALETTE = [
    "#1f77b4", "#d62728", "#2ca02c", "#ff7f0e", "#9467bd",
    "#8c564b", "#17becf", "#7f7f7f",
]

MARGIN_LEFT = 70
MARGIN_RIGHT = 20
MARGIN_TOP = 40
MARGIN_BOTTOM = 55


class Series:
    """One named data series."""

    def __init__(
        self,
        name: str,
        points: Sequence[Tuple[float, float]],
        style: str = "line+marker",  # "line", "marker", "line+marker", "step"
        color: Optional[str] = None,
    ):
        if not points:
            raise ValueError(f"series {name!r} has no points")
        if style not in ("line", "marker", "line+marker", "step"):
            raise ValueError(f"unknown style {style!r}")
        self.name = name
        self.points = list(points)
        self.style = style
        self.color = color


class Chart:
    """A 2-D chart with automatic or explicit axes."""

    def __init__(
        self,
        title: str,
        x_label: str,
        y_label: str,
        width: int = 640,
        height: int = 420,
        x_log: bool = False,
        y_log: bool = False,
    ):
        self.title = title
        self.x_label = x_label
        self.y_label = y_label
        self.width = width
        self.height = height
        self.x_log = x_log
        self.y_log = y_log
        self.series: List[Series] = []
        self._y_cap: Optional[float] = None

    def add(self, series: Series) -> "Chart":
        if series.color is None:
            series.color = PALETTE[len(self.series) % len(PALETTE)]
        self.series.append(series)
        return self

    def cap_y(self, cap: float) -> "Chart":
        """Clip the y-domain (the paper clips latency plots at ~500 ms)."""
        self._y_cap = cap
        return self

    # -- rendering -----------------------------------------------------------

    def _domains(self) -> Tuple[Axis, Axis]:
        xs = [x for s in self.series for x, _ in s.points]
        ys = [y for s in self.series for _, y in s.points]
        if self._y_cap is not None:
            ys = [min(y, self._y_cap) for y in ys]
        x_lo, x_hi = min(xs), max(xs)
        y_lo, y_hi = min(ys), max(ys)
        if self.x_log:
            x_axis = Axis.log(self.x_label, max(x_lo * 0.8, 1e-12), x_hi * 1.2)
        else:
            pad = 0.05 * (x_hi - x_lo or 1.0)
            x_axis = Axis.linear(self.x_label, max(0.0, x_lo - pad), x_hi + pad)
        if self.y_log:
            y_axis = Axis.log(self.y_label, max(y_lo * 0.8, 1e-12), y_hi * 1.2)
        else:
            pad = 0.05 * (y_hi - y_lo or 1.0)
            y_axis = Axis.linear(self.y_label, max(0.0, y_lo - pad), y_hi + pad)
        return x_axis, y_axis

    def _to_pixel(self, x_axis, y_axis, x, y) -> Tuple[float, float]:
        plot_w = self.width - MARGIN_LEFT - MARGIN_RIGHT
        plot_h = self.height - MARGIN_TOP - MARGIN_BOTTOM
        fx = min(max(x_axis.fraction(x), 0.0), 1.0)
        fy = min(max(y_axis.fraction(y), 0.0), 1.0)
        return MARGIN_LEFT + fx * plot_w, MARGIN_TOP + (1 - fy) * plot_h

    def render(self) -> str:
        if not self.series:
            raise ValueError("chart has no series")
        canvas = SvgCanvas(self.width, self.height)
        x_axis, y_axis = self._domains()
        left, top = MARGIN_LEFT, MARGIN_TOP
        right = self.width - MARGIN_RIGHT
        bottom = self.height - MARGIN_BOTTOM

        canvas.text(self.width / 2, 22, self.title, size=14, anchor="middle")
        # Frame and gridlines.
        canvas.rect(left, top, right - left, bottom - top, stroke="#444444")
        for value, label in x_axis.tick_labels():
            px, _ = self._to_pixel(x_axis, y_axis, value, y_axis.scale.lo)
            canvas.line(px, top, px, bottom, stroke="#dddddd")
            canvas.text(px, bottom + 16, label, size=10, anchor="middle")
        for value, label in y_axis.tick_labels():
            _, py = self._to_pixel(x_axis, y_axis, x_axis.scale.lo, value)
            canvas.line(left, py, right, py, stroke="#dddddd")
            canvas.text(left - 6, py + 4, label, size=10, anchor="end")
        canvas.text(
            (left + right) / 2, self.height - 12, self.x_label, size=12,
            anchor="middle",
        )
        canvas.text(
            16, (top + bottom) / 2, self.y_label, size=12, anchor="middle",
            rotate=-90,
        )

        # Series.
        for series in self.series:
            pts = series.points
            if self._y_cap is not None:
                pts = [(x, min(y, self._y_cap)) for x, y in pts]
            pixels = [self._to_pixel(x_axis, y_axis, x, y) for x, y in pts]
            if series.style == "step" and len(pixels) > 1:
                stepped = []
                for (x1, y1), (x2, y2) in zip(pixels, pixels[1:]):
                    stepped.extend([(x1, y1), (x2, y1)])
                stepped.append(pixels[-1])
                canvas.polyline(stepped, stroke=series.color)
            elif "line" in series.style and len(pixels) > 1:
                canvas.polyline(pixels, stroke=series.color)
            if "marker" in series.style:
                for px, py in pixels:
                    canvas.circle(px, py, 3.0, fill=series.color)

        # Legend.
        legend_y = top + 14
        for series in self.series:
            canvas.line(left + 10, legend_y - 4, left + 34, legend_y - 4,
                        stroke=series.color, width=2.5)
            canvas.text(left + 40, legend_y, series.name, size=11)
            legend_y += 16
        return canvas.render()

    def save(self, path) -> None:
        with open(path, "w") as f:
            f.write(self.render())


# -- figure-shaped builders used by the experiment harness -------------------


def sweep_chart(
    title: str,
    summaries_by_system: Dict[str, List],
    latency_cap_ms: float = 500.0,
) -> Chart:
    """Figure-7/13/14-style chart: achieved throughput vs p90 latency."""
    chart = Chart(
        title,
        x_label="Throughput (req/s)",
        y_label="90p latency (ms)",
    )
    chart.cap_y(latency_cap_ms)
    for system, summaries in summaries_by_system.items():
        points = [(s.throughput, s.p90_ms) for s in summaries]
        chart.add(Series(system, points))
    return chart


def cdf_chart(
    title: str,
    series_points: Dict[str, Sequence[Tuple[float, float]]],
    x_label: str = "Time (ms)",
    x_log: bool = True,
) -> Chart:
    """Figure-9/10-style chart: cumulative fraction vs value."""
    chart = Chart(
        title,
        x_label=x_label,
        y_label="Cumulative fraction",
        x_log=x_log,
    )
    for name, points in series_points.items():
        chart.add(Series(name, list(points), style="step"))
    return chart


def timeline_chart(
    title: str,
    request_windows: Dict[str, Tuple[float, float, float]],
) -> Chart:
    """Figure-5-style chart: one horizontal bar per request.

    ``request_windows`` maps a request name to (arrival, start, finish);
    rendered as markers at arrival/start and a line to finish, stacked by
    insertion order.
    """
    chart = Chart(
        title, x_label="Time (units)", y_label="Request (index)", height=360
    )
    for index, (name, (arrival, start, finish)) in enumerate(
        request_windows.items()
    ):
        y = float(len(request_windows) - index)
        chart.add(
            Series(
                name,
                [(arrival, y), (start, y), (finish, y)],
                style="line+marker",
            )
        )
    return chart

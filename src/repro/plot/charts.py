"""Backwards-compatible alias: the figure builders now live in
:mod:`repro.plot.chart` alongside the Chart core (this module and that one
had drifted into near-duplicates).  Import from ``repro.plot`` or
``repro.plot.chart``; this shim keeps old ``repro.plot.charts`` imports
working."""

from repro.plot.chart import (  # noqa: F401
    Chart,
    Series,
    cdf_chart,
    sweep_chart,
    timeline_chart,
)

__all__ = ["Chart", "Series", "cdf_chart", "sweep_chart", "timeline_chart"]

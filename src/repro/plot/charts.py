"""Figure-specific chart builders used by the experiment harness."""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.plot.chart import Chart, Series


def sweep_chart(
    title: str,
    summaries_by_system: Dict[str, List],
    latency_cap_ms: float = 500.0,
) -> Chart:
    """Figure-7/13/14-style chart: achieved throughput vs p90 latency."""
    chart = Chart(
        title,
        x_label="Throughput (req/s)",
        y_label="90p latency (ms)",
    )
    chart.cap_y(latency_cap_ms)
    for system, summaries in summaries_by_system.items():
        points = [(s.throughput, s.p90_ms) for s in summaries]
        chart.add(Series(system, points))
    return chart


def cdf_chart(
    title: str,
    series_points: Dict[str, Sequence[Tuple[float, float]]],
    x_label: str = "Time (ms)",
    x_log: bool = True,
) -> Chart:
    """Figure-9/10-style chart: cumulative fraction vs value."""
    chart = Chart(
        title,
        x_label=x_label,
        y_label="Cumulative fraction",
        x_log=x_log,
    )
    for name, points in series_points.items():
        chart.add(Series(name, list(points), style="step"))
    return chart


def timeline_chart(
    title: str,
    request_windows: Dict[str, Tuple[float, float, float]],
) -> Chart:
    """Figure-5-style chart: one horizontal bar per request.

    ``request_windows`` maps a request name to (arrival, start, finish);
    rendered as markers at arrival/start and a line to finish, stacked by
    insertion order.
    """
    chart = Chart(
        title, x_label="Time (units)", y_label="Request (index)", height=360
    )
    for index, (name, (arrival, start, finish)) in enumerate(
        request_windows.items()
    ):
        y = float(len(request_windows) - index)
        chart.add(
            Series(
                name,
                [(arrival, y), (start, y), (finish, y)],
                style="line+marker",
            )
        )
    return chart

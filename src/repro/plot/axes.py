"""Axis scales and tick generation."""

from __future__ import annotations

import math
from typing import List, Tuple


def nice_ticks(lo: float, hi: float, target: int = 6) -> List[float]:
    """Human-friendly linear tick positions covering [lo, hi]."""
    if hi < lo:
        raise ValueError(f"invalid range [{lo}, {hi}]")
    if hi == lo:
        return [lo]
    span = hi - lo
    raw_step = span / max(target - 1, 1)
    magnitude = 10 ** math.floor(math.log10(raw_step))
    for multiple in (1, 2, 2.5, 5, 10):
        step = multiple * magnitude
        if span / step <= target:
            break
    first = math.ceil(lo / step) * step
    ticks = []
    value = first
    while value <= hi + 1e-9 * span:
        ticks.append(round(value, 12))
        value += step
    return ticks


class LinearScale:
    """Maps a data interval onto a pixel interval linearly."""

    def __init__(self, lo: float, hi: float):
        if hi <= lo:
            raise ValueError(f"invalid domain [{lo}, {hi}]")
        self.lo = lo
        self.hi = hi

    def fraction(self, value: float) -> float:
        return (value - self.lo) / (self.hi - self.lo)

    def ticks(self, target: int = 6) -> List[float]:
        return nice_ticks(self.lo, self.hi, target)


class LogScale:
    """Base-10 logarithmic scale; domain must be strictly positive."""

    def __init__(self, lo: float, hi: float):
        if lo <= 0 or hi <= lo:
            raise ValueError(f"invalid log domain [{lo}, {hi}]")
        self.lo = lo
        self.hi = hi

    def fraction(self, value: float) -> float:
        if value <= 0:
            raise ValueError("log scale cannot map non-positive values")
        return (math.log10(value) - math.log10(self.lo)) / (
            math.log10(self.hi) - math.log10(self.lo)
        )

    def ticks(self, target: int = 6) -> List[float]:
        lo_exp = math.floor(math.log10(self.lo))
        hi_exp = math.ceil(math.log10(self.hi))
        ticks = [
            10.0 ** e
            for e in range(lo_exp, hi_exp + 1)
            if self.lo <= 10.0 ** e <= self.hi
        ]
        return ticks or [self.lo, self.hi]


def _format_tick(value: float) -> str:
    if value == 0:
        return "0"
    if abs(value) >= 1000:
        if abs(value) >= 1e6:
            return f"{value / 1e6:g}M"
        return f"{value / 1e3:g}k"
    if abs(value) < 0.01:
        return f"{value:.0e}"
    return f"{value:g}"


class Axis:
    """An axis: label + scale + rendered tick labels."""

    def __init__(self, label: str, scale, log: bool = False):
        self.label = label
        self.scale = scale
        self.log = log

    @classmethod
    def linear(cls, label: str, lo: float, hi: float) -> "Axis":
        if hi == lo:
            hi = lo + 1.0
        return cls(label, LinearScale(lo, hi))

    @classmethod
    def log(cls, label: str, lo: float, hi: float) -> "Axis":
        return cls(label, LogScale(lo, hi), log=True)

    def fraction(self, value: float) -> float:
        return self.scale.fraction(value)

    def tick_labels(self, target: int = 6) -> List[Tuple[float, str]]:
        return [(t, _format_tick(t)) for t in self.scale.ticks(target)]

"""Dependency-free SVG charting.

The experiment harness prints text tables; this package additionally
renders the paper's figures as standalone SVG files (no matplotlib in the
offline environment).  It provides a small but complete charting core —
linear/log axes with tick generation, line/scatter/step series, legends —
and figure-specific helpers used by ``repro.experiments.runner --plot-dir``.
"""

from repro.plot.axes import Axis, LinearScale, LogScale, nice_ticks
from repro.plot.chart import Chart, Series, cdf_chart, sweep_chart, timeline_chart
from repro.plot.svg import SvgCanvas

__all__ = [
    "Axis",
    "LinearScale",
    "LogScale",
    "nice_ticks",
    "Chart",
    "Series",
    "SvgCanvas",
    "sweep_chart",
    "cdf_chart",
    "timeline_chart",
]

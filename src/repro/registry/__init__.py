"""Unified server registry: declarative specs -> constructed servers.

The experiment modules historically repeated constructor / event-loop /
device plumbing for every server flavour.  This package replaces that
with one path:

* :class:`ServerSpec` — a server as plain data (engine kind, model name,
  GPU count, batching config, policy names, engine params), with exact
  ``to_dict``/``from_dict`` round-tripping.
* :func:`build_server` — constructs BatchMaker or any of the four
  graph-batching baselines (padded, timeout_padded, fold, ideal) from a
  spec, attaching it as ``server.spec``.
* :mod:`repro.registry.presets` — the specs for every configuration the
  paper's figures evaluate.
"""

from repro.registry.builders import build_server
from repro.registry.models import MODELS, make_model
from repro.registry.specs import KINDS, ClusterSpec, ServeSpec, ServerSpec
from repro.registry import presets

__all__ = [
    "ServerSpec",
    "ClusterSpec",
    "ServeSpec",
    "KINDS",
    "MODELS",
    "make_model",
    "build_server",
    "presets",
]

"""Model registry: servable models by name.

Specs refer to models declaratively (``model="seq2seq"``) so a whole
server — BatchMaker or baseline — can be described as plain data and
rebuilt anywhere (worker processes, config files, tests).
"""

from __future__ import annotations

from typing import Dict, Type

from repro.models import (
    AttentionSeq2SeqModel,
    BeamSeq2SeqModel,
    GRUChainModel,
    LSTMChainModel,
    Model,
    Seq2SeqModel,
    TreeLSTMModel,
)

MODELS: Dict[str, Type[Model]] = {
    "lstm": LSTMChainModel,
    "gru": GRUChainModel,
    "seq2seq": Seq2SeqModel,
    "attention_seq2seq": AttentionSeq2SeqModel,
    "beam_seq2seq": BeamSeq2SeqModel,
    "treelstm": TreeLSTMModel,
}


def make_model(name: str, **model_args) -> Model:
    """Instantiate a registered model by name."""
    cls = MODELS.get(name)
    if cls is None:
        raise KeyError(f"unknown model {name!r} (have: {sorted(MODELS)})")
    return cls(**model_args)

"""Preset specs for the paper's evaluated configurations.

Each function returns the :class:`~repro.registry.specs.ServerSpec` for
one server the figure experiments (fig7/fig13/fig14/fig15) and the
ablations evaluate; ``all_fig_specs()`` enumerates them so the registry
tests can assert every published configuration constructs.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.config import BatchingConfig
from repro.gpu.energy import EnergySpec
from repro.gpu.memory import DEFAULT_STATE_BYTES, MemorySpec
from repro.registry.specs import ClusterSpec, ServeSpec, ServerSpec

# Per-batch fixed overheads for the two padding baselines: in the paper's
# Figure 7 TensorFlow tracks MXNet closely but slightly worse; the gap is a
# per-graph-dispatch constant.
MXNET_BATCH_OVERHEAD = 80e-6
TENSORFLOW_BATCH_OVERHEAD = 150e-6


def _padding_overhead(system: str) -> float:
    return MXNET_BATCH_OVERHEAD if system == "MXNet" else TENSORFLOW_BATCH_OVERHEAD


def lstm_batchmaker_spec(
    max_batch: int = 512,
    num_gpus: int = 1,
    policies: Optional[Dict[str, str]] = None,
) -> ServerSpec:
    """BatchMaker serving the chain LSTM with the paper's defaults."""
    return ServerSpec(
        kind="batchmaker",
        model="lstm",
        num_gpus=num_gpus,
        name="BatchMaker",
        config=BatchingConfig.with_max_batch(max_batch).to_dict(),
        policies=policies,
    )


def lstm_padded_spec(
    system: str = "MXNet",
    bucket_width: int = 10,
    max_batch: int = 512,
    num_gpus: int = 1,
) -> ServerSpec:
    """MXNet- or TensorFlow-flavoured padding baseline for the chain LSTM."""
    return ServerSpec(
        kind="padded",
        model="lstm",
        num_gpus=num_gpus,
        name=system,
        params={
            "bucket_width": bucket_width,
            "max_batch": max_batch,
            "per_batch_overhead": _padding_overhead(system),
        },
    )


def seq2seq_batchmaker_spec(
    encoder_batch: int = 512,
    decoder_batch: int = 256,
    num_gpus: int = 2,
    policies: Optional[Dict[str, str]] = None,
) -> ServerSpec:
    """BatchMaker-<enc>,<dec> configuration from Figure 13."""
    config = BatchingConfig.with_max_batch(
        encoder_batch,
        per_cell_max={"decoder": decoder_batch},
        per_cell_priority={"decoder": 1, "encoder": 0},
    )
    return ServerSpec(
        kind="batchmaker",
        model="seq2seq",
        num_gpus=num_gpus,
        name=f"BatchMaker-{encoder_batch},{decoder_batch}",
        config=config.to_dict(),
        policies=policies,
    )


def seq2seq_memory_spec(
    capacity_requests: int = 48,
    admission_free_requests: Optional[int] = None,
) -> MemorySpec:
    """A per-device byte budget sized in units of live request states.

    Capacity holds the encoder+decoder weights plus ``capacity_requests``
    hidden-state footprints; ``admission_free_requests`` (optional) arms
    front-door shedding once free memory drops below that many states.
    """
    weights = {"encoder": 16 * DEFAULT_STATE_BYTES, "decoder": 24 * DEFAULT_STATE_BYTES}
    return MemorySpec(
        capacity=sum(weights.values()) + capacity_requests * DEFAULT_STATE_BYTES,
        state_bytes=DEFAULT_STATE_BYTES,
        weights=weights,
        admission_free_bytes=(
            admission_free_requests * DEFAULT_STATE_BYTES
            if admission_free_requests is not None
            else None
        ),
    )


def seq2seq_dynamic_spec(
    encoder_batch: int = 512,
    decoder_batch: int = 256,
    num_gpus: int = 2,
    capacity_requests: Optional[int] = 48,
    admission_free_requests: Optional[int] = None,
    memory_aware: bool = True,
    max_decode: Optional[int] = None,
) -> ServerSpec:
    """Feed-previous Seq2Seq whose decode length is discovered one step at
    a time — the continuous-batching workload of DESIGN.md §15.

    The model's ``dynamic`` knob makes every payload grow its decoder
    incrementally (``extend()``), so per-request device state accretes for
    an unknown number of steps.  ``capacity_requests`` sizes a per-device
    memory budget in units of live hidden states (None drops the budget —
    the historical time-only device model); ``memory_aware=False`` keeps
    the budget but serves it with the oblivious paper formation, the
    overcommitting baseline fig_memory contrasts against.
    """
    config = BatchingConfig.with_max_batch(
        encoder_batch,
        per_cell_max={"decoder": decoder_batch},
        per_cell_priority={"decoder": 1, "encoder": 0},
    )
    model_args: Dict = {"dynamic": True}
    if max_decode is not None:
        model_args["max_decode"] = max_decode
    memory = (
        seq2seq_memory_spec(capacity_requests, admission_free_requests).to_dict()
        if capacity_requests is not None
        else None
    )
    label = "aware" if memory_aware else "oblivious"
    return ServerSpec(
        kind="batchmaker",
        model="seq2seq",
        model_args=model_args,
        num_gpus=num_gpus,
        name=f"BatchMaker-dynamic ({label})",
        config=config.to_dict(),
        policies={"formation": "memory_aware"} if memory_aware else None,
        memory=memory,
    )


def seq2seq_padded_spec(system: str = "MXNet", num_gpus: int = 2) -> ServerSpec:
    return ServerSpec(
        kind="padded",
        model="seq2seq",
        num_gpus=num_gpus,
        name=system,
        params={
            "bucket_width": 10,
            # decoder-optimal; graph batching forces one size
            "max_batch": 256,
            "per_batch_overhead": _padding_overhead(system),
        },
    )


def timeout_padded_spec(
    system: str = "MXNet",
    timeout: float = 2e-3,
    bucket_width: int = 10,
    max_batch: int = 512,
    num_gpus: int = 1,
    model: str = "lstm",
) -> ServerSpec:
    """Clipper-style timeout batching (the §7.1 strategy the paper rejects)."""
    return ServerSpec(
        kind="timeout_padded",
        model=model,
        num_gpus=num_gpus,
        params={
            "timeout": timeout,
            "bucket_width": bucket_width,
            "max_batch": max_batch,
            "per_batch_overhead": _padding_overhead(system),
        },
    )


def tree_batchmaker_spec(
    max_batch: int = 64,
    num_gpus: int = 1,
    policies: Optional[Dict[str, str]] = None,
) -> ServerSpec:
    config = BatchingConfig.with_max_batch(
        max_batch,
        per_cell_priority={"tree_internal": 1, "tree_leaf": 0},
    )
    return ServerSpec(
        kind="batchmaker",
        model="treelstm",
        num_gpus=num_gpus,
        name="BatchMaker",
        config=config.to_dict(),
        policies=policies,
    )


def tree_dynet_spec(num_gpus: int = 1) -> ServerSpec:
    return ServerSpec(
        kind="fold",
        model="treelstm",
        num_gpus=num_gpus,
        params={"variant": "dynet"},
    )


def tree_tensorflow_fold_spec(num_gpus: int = 1) -> ServerSpec:
    return ServerSpec(
        kind="fold",
        model="treelstm",
        num_gpus=num_gpus,
        params={"variant": "tensorflow_fold"},
    )


def fixed_tree_ideal_spec(
    num_leaves: int = 16, max_batch: int = 64, num_gpus: int = 1
) -> ServerSpec:
    """Figure 15's ideal comparator: one hard-coded complete-tree graph."""
    return ServerSpec(
        kind="ideal",
        model="treelstm",
        num_gpus=num_gpus,
        params={
            "template": {"complete_tree_leaves": num_leaves},
            "max_batch": max_batch,
        },
    )


def v100_energy_spec(
    frequencies=(0.6, 0.8, 1.0), governor: str = "race_to_idle"
) -> EnergySpec:
    """V100-class energy envelope: 50 W idle, 250 W active at full clock,
    three DVFS states (kernel time scales 1/f, dynamic power f^3 — the
    fig_energy frontier's knob)."""
    return EnergySpec(
        idle_watts=50.0,
        active_watts=250.0,
        frequencies=frequencies,
        governor=governor,
    )


def eco_energy_spec() -> EnergySpec:
    """A low-power inference device (CPU/edge-accelerator class): 10 W
    idle, 60 W active, no DVFS — pair it with ``latency_scale`` in a
    heterogeneous fleet."""
    return EnergySpec(idle_watts=10.0, active_watts=60.0)


def lstm_energy_spec(
    frequencies=(0.6, 0.8, 1.0),
    governor: str = "race_to_idle",
    max_batch: int = 512,
    num_gpus: int = 1,
) -> ServerSpec:
    """The chain-LSTM BatchMaker with joule accounting and DVFS armed —
    the fig_energy workhorse.  ``governor="fixed"`` pins the max clock
    (the race-to-idle comparison baseline)."""
    return lstm_batchmaker_spec(max_batch=max_batch, num_gpus=num_gpus).replace(
        energy=v100_energy_spec(frequencies, governor).to_dict(),
        name=f"BatchMaker ({governor})",
    )


def lstm_hetero_cluster_spec(
    eco_replicas: int = 1,
    v100_replicas: int = 2,
    router: str = "cheapest_energy",
    seed: int = 0,
    bucket_width: int = 32,
    autoscaler: Optional[Dict] = None,
) -> ClusterSpec:
    """A heterogeneous LSTM fleet: cheap slow ``eco`` devices (declared
    first, so class-affinity routing keeps short requests there) next to
    full-power ``v100`` replicas, with per-class joule accounting — the
    replica-mix sweep's template."""
    classes = [
        {
            "name": "eco",
            "replicas": eco_replicas,
            "latency_scale": 3.0,
            "energy": eco_energy_spec().to_dict(),
        },
        {
            "name": "v100",
            "replicas": v100_replicas,
            "energy": v100_energy_spec().to_dict(),
        },
    ]
    router_params = (
        {"bucket_width": bucket_width} if router == "class_affinity" else {}
    )
    return ClusterSpec(
        replica=lstm_batchmaker_spec(),
        num_replicas=eco_replicas + v100_replicas,
        router=router,
        router_params=router_params,
        seed=seed,
        autoscaler=autoscaler,
        device_classes=classes,
        name=f"BatchMaker hetero {eco_replicas}eco+{v100_replicas}v100 ({router})",
    )


def lstm_cluster_spec(
    num_replicas: int = 2,
    router: str = "round_robin",
    num_gpus: int = 1,
    max_batch: int = 512,
    seed: int = 0,
    autoscaler: Optional[Dict] = None,
    router_params: Optional[Dict] = None,
) -> ClusterSpec:
    """N BatchMaker LSTM replicas behind a front-end router (fig_cluster)."""
    return ClusterSpec(
        replica=lstm_batchmaker_spec(max_batch=max_batch, num_gpus=num_gpus),
        num_replicas=num_replicas,
        router=router,
        router_params=router_params or {},
        seed=seed,
        autoscaler=autoscaler,
        name=f"BatchMaker x{num_replicas} ({router})",
    )


def seq2seq_cluster_spec(
    num_replicas: int = 2, router: str = "least_outstanding", seed: int = 0
) -> ClusterSpec:
    """Seq2Seq replica cluster (each replica the Figure-13 2-GPU config)."""
    return ClusterSpec(
        replica=seq2seq_batchmaker_spec(),
        num_replicas=num_replicas,
        router=router,
        seed=seed,
        name=f"BatchMaker-seq2seq x{num_replicas} ({router})",
    )


def seq2seq_dynamic_cluster_spec(
    num_replicas: int = 2,
    router: str = "most_free_memory",
    seed: int = 0,
    capacity_requests: int = 48,
    admission_free_requests: Optional[int] = 2,
) -> ClusterSpec:
    """Dynamic-decode Seq2Seq replicas routed by free device memory, with
    front-door memory admission (``"memory_reject"``)."""
    return ClusterSpec(
        replica=seq2seq_dynamic_spec(capacity_requests=capacity_requests),
        num_replicas=num_replicas,
        router=router,
        seed=seed,
        memory=seq2seq_memory_spec(
            capacity_requests, admission_free_requests
        ).to_dict(),
        name=f"BatchMaker-dynamic x{num_replicas} ({router})",
    )


def lstm_serve_spec(
    host: str = "127.0.0.1",
    port: int = 8123,
    journal: Optional[str] = None,
    max_batch: int = 512,
    num_gpus: int = 1,
    num_replicas: int = 1,
    router: str = "round_robin",
) -> ServeSpec:
    """The default live-serving deployment (:mod:`repro.serve`): BatchMaker
    LSTM replicas behind the HTTP front end, over the real-time clock.
    ``num_replicas=1`` serves a bare engine; more builds a cluster."""
    if num_replicas == 1:
        return ServeSpec(
            server=lstm_batchmaker_spec(max_batch=max_batch, num_gpus=num_gpus),
            host=host,
            port=port,
            journal=journal,
        )
    return ServeSpec(
        cluster=lstm_cluster_spec(
            num_replicas=num_replicas,
            router=router,
            num_gpus=num_gpus,
            max_batch=max_batch,
        ),
        host=host,
        port=port,
        journal=journal,
    )


def all_cluster_specs() -> Dict[str, ClusterSpec]:
    """Every cluster configuration the fig_cluster experiment evaluates."""
    specs: Dict[str, ClusterSpec] = {}
    for router in (
        "round_robin",
        "least_outstanding",
        "shortest_queue",
        "length_bucketed",
    ):
        specs[f"cluster_lstm_{router}"] = lstm_cluster_spec(router=router)
    specs["cluster_seq2seq"] = seq2seq_cluster_spec()
    specs["cluster_seq2seq_dynamic"] = seq2seq_dynamic_cluster_spec()
    specs["cluster_lstm_hetero_cheapest_energy"] = lstm_hetero_cluster_spec()
    specs["cluster_lstm_hetero_class_affinity"] = lstm_hetero_cluster_spec(
        router="class_affinity"
    )
    return specs


def all_fig_specs() -> Dict[str, ServerSpec]:
    """Every server configuration the fig* experiments evaluate."""
    return {
        "fig7_batchmaker": lstm_batchmaker_spec(),
        "fig7_mxnet": lstm_padded_spec("MXNet"),
        "fig7_tensorflow": lstm_padded_spec("TensorFlow"),
        "fig13_batchmaker_512_256": seq2seq_batchmaker_spec(),
        "fig13_batchmaker_512_512": seq2seq_batchmaker_spec(decoder_batch=512),
        "fig13_mxnet": seq2seq_padded_spec("MXNet"),
        "fig14_batchmaker": tree_batchmaker_spec(),
        "fig14_dynet": tree_dynet_spec(),
        "fig14_tf_fold": tree_tensorflow_fold_spec(),
        "fig15_ideal": fixed_tree_ideal_spec(),
        "timeout_ablation_mxnet": timeout_padded_spec(),
        "fig_memory_aware": seq2seq_dynamic_spec(),
        "fig_memory_oblivious": seq2seq_dynamic_spec(memory_aware=False),
        "fig_energy_race_to_idle": lstm_energy_spec(),
        "fig_energy_fixed": lstm_energy_spec(governor="fixed"),
    }

"""Build servers from :class:`~repro.registry.specs.ServerSpec`.

One construction path for BatchMaker and every graph-batching baseline.
The built server gets its originating spec attached as ``server.spec``,
so the registry round-trips: ``build_server(spec).spec == spec``.

Runtime-only objects (the event loop, a cost model, fault plans, SLAs)
are not part of the spec — they are passed as overrides to
:func:`build_server` and never serialised.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.baselines import FoldServer, IdealServer, PaddedServer, TimeoutPaddedServer
from repro.core.batchmaker import BatchMakerServer
from repro.core.config import BatchingConfig
from repro.policies import bundle_from_names
from repro.registry.models import make_model
from repro.registry.specs import ServerSpec
from repro.server import InferenceServer
from repro.sim.events import EventLoop


def build_server(
    spec: ServerSpec,
    loop: Optional[EventLoop] = None,
    **runtime: Any,
) -> InferenceServer:
    """Construct the server a spec describes.

    ``runtime`` carries non-serialisable per-run objects; which keys are
    accepted depends on the kind (``cost_model`` / ``real_compute`` /
    ``fault_plan`` / ``sla`` / ``memory`` / ``energy`` / ``policies`` for
    batchmaker — an explicit ``policies`` bundle overrides the spec's
    policy names).
    """
    builder = _BUILDERS.get(spec.kind)
    if builder is None:  # unreachable: ServerSpec validates kind
        raise ValueError(f"unknown server kind {spec.kind!r}")
    if spec.memory is not None and spec.kind != "batchmaker":
        raise ValueError(
            f"memory specs require the batchmaker engine, not {spec.kind!r}: "
            "the graph-batching baselines have no per-subgraph state to account"
        )
    if spec.energy is not None and spec.kind != "batchmaker":
        raise ValueError(
            f"energy specs require the batchmaker engine, not {spec.kind!r}: "
            "the graph-batching baselines have no per-device joule accounting"
        )
    server = builder(spec, loop, runtime)
    if runtime:
        raise TypeError(
            f"unsupported runtime overrides for kind {spec.kind!r}: "
            f"{sorted(runtime)}"
        )
    server.spec = spec
    return server


def _named(spec: ServerSpec) -> Dict[str, Any]:
    return {} if spec.name is None else {"name": spec.name}


def _build_batchmaker(spec, loop, runtime):
    config = (
        BatchingConfig.from_dict(spec.config) if spec.config is not None else None
    )
    policies = runtime.pop("policies", None)
    if policies is None and spec.policies:
        if config is None:
            config = BatchingConfig.with_max_batch(512)  # server default
        policies = bundle_from_names(config, **spec.policies)
    sla = runtime.pop("sla", None)
    if sla is None and spec.sla:
        from repro.faults.sla import SLAConfig

        sla = SLAConfig.from_dict(spec.sla)
    memory = runtime.pop("memory", None)
    if memory is None and spec.memory:
        from repro.gpu.memory import MemorySpec

        memory = MemorySpec.from_dict(spec.memory)
    energy = runtime.pop("energy", None)
    if energy is None and spec.energy:
        from repro.gpu.energy import EnergySpec

        energy = EnergySpec.from_dict(spec.energy)
    return BatchMakerServer(
        make_model(spec.model, **spec.model_args),
        config=config,
        num_gpus=spec.num_gpus,
        loop=loop,
        policies=policies,
        cost_model=runtime.pop("cost_model", None),
        real_compute=runtime.pop("real_compute", False),
        fault_plan=runtime.pop("fault_plan", None),
        sla=sla,
        memory=memory,
        energy=energy,
        **_named(spec),
    )


def _build_padded(spec, loop, runtime, cls=PaddedServer):
    return cls(
        make_model(spec.model, **spec.model_args),
        num_gpus=spec.num_gpus,
        loop=loop,
        **_named(spec),
        **spec.params,
    )


def _build_timeout_padded(spec, loop, runtime):
    return _build_padded(spec, loop, runtime, cls=TimeoutPaddedServer)


def _build_fold(spec, loop, runtime):
    params = dict(spec.params)
    variant = params.pop("variant", None)
    model = make_model(spec.model, **spec.model_args)
    kwargs = {"num_gpus": spec.num_gpus, "loop": loop, **_named(spec), **params}
    if variant == "dynet":
        return FoldServer.dynet(model, **kwargs)
    if variant == "tensorflow_fold":
        return FoldServer.tensorflow_fold(model, **kwargs)
    if variant is not None:
        raise ValueError(f"unknown fold variant {variant!r}")
    return FoldServer(model, **kwargs)


def _build_ideal(spec, loop, runtime):
    params = dict(spec.params)
    template = params.pop("template")
    return IdealServer(
        make_model(spec.model, **spec.model_args),
        _resolve_template(template),
        num_gpus=spec.num_gpus,
        loop=loop,
        **_named(spec),
        **params,
    )


def _resolve_template(template: Any):
    """The ideal server's hard-coded structure, from serialisable form.

    ``{"complete_tree_leaves": N}`` describes a complete binary tree
    (Figure 15); ``{"chain_length": N}`` a fixed-length chain; any other
    value is passed through verbatim as the template payload.
    """
    if isinstance(template, dict) and "complete_tree_leaves" in template:
        from repro.models.tree_lstm import TreeNodeSpec, TreePayload

        return TreePayload(TreeNodeSpec.complete(template["complete_tree_leaves"]))
    if isinstance(template, dict) and "chain_length" in template:
        return template["chain_length"]
    return template


_BUILDERS = {
    "batchmaker": _build_batchmaker,
    "padded": _build_padded,
    "timeout_padded": _build_timeout_padded,
    "fold": _build_fold,
    "ideal": _build_ideal,
}

"""Declarative server specifications.

A :class:`ServerSpec` is plain data describing one inference server —
which engine (``kind``), which model, how many GPUs, the batching config,
the scheduling-policy names, and engine-specific parameters.  It exists
so BatchMaker and the four graph-batching baselines are constructed
through *one* code path (:func:`repro.registry.build_server`) instead of
each experiment module repeating constructor plumbing, and so a server's
identity round-trips: ``build(spec).spec == spec`` and
``ServerSpec.from_dict(spec.to_dict()) == spec``.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

KINDS = ("batchmaker", "padded", "timeout_padded", "fold", "ideal")


class ServerSpec:
    """One server, as data.

    Parameters
    ----------
    kind:
        Engine: ``batchmaker`` (cellular batching) or one of the
        graph-batching baselines ``padded`` / ``timeout_padded`` /
        ``fold`` / ``ideal``.
    model:
        Registered model name (see :mod:`repro.registry.models`).
    model_args:
        Keyword arguments for the model constructor.
    num_gpus:
        Worker/device count.
    name:
        Display name; None lets the server pick its own default.
    config:
        ``BatchingConfig.to_dict()`` form (batchmaker only); None means
        the server's default config.
    policies:
        Policy-name overrides, e.g. ``{"placement": "unpinned"}``
        (batchmaker only); None or ``{}`` means the paper defaults —
        the bit-identity-guaranteed path.
    params:
        Engine-specific knobs: bucket_width / max_batch /
        per_batch_overhead ... for the padded servers, ``variant`` or
        overhead constants for fold, ``template`` for ideal.
    """

    def __init__(
        self,
        kind: str,
        model: str,
        model_args: Optional[Dict[str, Any]] = None,
        num_gpus: int = 1,
        name: Optional[str] = None,
        config: Optional[Dict[str, Any]] = None,
        policies: Optional[Dict[str, str]] = None,
        params: Optional[Dict[str, Any]] = None,
    ):
        if kind not in KINDS:
            raise ValueError(f"unknown server kind {kind!r} (have: {KINDS})")
        if num_gpus < 1:
            raise ValueError("num_gpus must be >= 1")
        self.kind = kind
        self.model = model
        self.model_args = dict(model_args or {})
        self.num_gpus = num_gpus
        self.name = name
        self.config = config
        self.policies = dict(policies or {})
        self.params = dict(params or {})

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "model": self.model,
            "model_args": dict(self.model_args),
            "num_gpus": self.num_gpus,
            "name": self.name,
            "config": self.config,
            "policies": dict(self.policies),
            "params": dict(self.params),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ServerSpec":
        return cls(
            kind=data["kind"],
            model=data["model"],
            model_args=data.get("model_args"),
            num_gpus=data.get("num_gpus", 1),
            name=data.get("name"),
            config=data.get("config"),
            policies=data.get("policies"),
            params=data.get("params"),
        )

    def replace(self, **changes: Any) -> "ServerSpec":
        """A copy with the given fields replaced (specs are value objects)."""
        data = self.to_dict()
        data.update(changes)
        return ServerSpec.from_dict(data)

    def __eq__(self, other: Any) -> bool:
        return isinstance(other, ServerSpec) and self.to_dict() == other.to_dict()

    def __repr__(self) -> str:
        label = self.name if self.name is not None else "<default name>"
        return (
            f"ServerSpec({self.kind}, model={self.model}, "
            f"num_gpus={self.num_gpus}, name={label!r})"
        )

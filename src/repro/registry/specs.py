"""Declarative server specifications.

A :class:`ServerSpec` is plain data describing one inference server —
which engine (``kind``), which model, how many GPUs, the batching config,
the scheduling-policy names, and engine-specific parameters.  It exists
so BatchMaker and the four graph-batching baselines are constructed
through *one* code path (:func:`repro.registry.build_server`) instead of
each experiment module repeating constructor plumbing, and so a server's
identity round-trips: ``build(spec).spec == spec`` and
``ServerSpec.from_dict(spec.to_dict()) == spec``.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

KINDS = ("batchmaker", "padded", "timeout_padded", "fold", "ideal")


class ServerSpec:
    """One server, as data.

    Parameters
    ----------
    kind:
        Engine: ``batchmaker`` (cellular batching) or one of the
        graph-batching baselines ``padded`` / ``timeout_padded`` /
        ``fold`` / ``ideal``.
    model:
        Registered model name (see :mod:`repro.registry.models`).
    model_args:
        Keyword arguments for the model constructor.
    num_gpus:
        Worker/device count.
    name:
        Display name; None lets the server pick its own default.
    config:
        ``BatchingConfig.to_dict()`` form (batchmaker only); None means
        the server's default config.
    policies:
        Policy-name overrides, e.g. ``{"placement": "unpinned"}``
        (batchmaker only); None or ``{}`` means the paper defaults —
        the bit-identity-guaranteed path.
    params:
        Engine-specific knobs: bucket_width / max_batch /
        per_batch_overhead ... for the padded servers, ``variant`` or
        overhead constants for fold, ``template`` for ideal.
    sla:
        ``SLAConfig.to_dict()`` form (batchmaker only): deadlines,
        shedding, retry and lazy-kick knobs (see :mod:`repro.faults.sla`);
        None means no SLA — the bit-identity-guaranteed path.  A runtime
        ``sla=`` override passed to ``build_server`` wins over this field.
    memory:
        ``MemorySpec.to_dict()`` form (batchmaker only): per-device byte
        capacity, weight residency and per-request state footprint (see
        :mod:`repro.gpu.memory`); None means the historical time-only
        device model — the bit-identity-guaranteed path.  A runtime
        ``memory=`` override passed to ``build_server`` wins over this
        field.
    energy:
        ``EnergySpec.to_dict()`` form (batchmaker only): idle/active power,
        DVFS frequency states and the governor that drives them (see
        :mod:`repro.gpu.energy`); None means the energy-blind engine — the
        bit-identity-guaranteed path.  A runtime ``energy=`` override
        passed to ``build_server`` wins over this field.
    """

    def __init__(
        self,
        kind: str,
        model: str,
        model_args: Optional[Dict[str, Any]] = None,
        num_gpus: int = 1,
        name: Optional[str] = None,
        config: Optional[Dict[str, Any]] = None,
        policies: Optional[Dict[str, str]] = None,
        params: Optional[Dict[str, Any]] = None,
        sla: Optional[Dict[str, Any]] = None,
        memory: Optional[Dict[str, Any]] = None,
        energy: Optional[Dict[str, Any]] = None,
    ):
        if kind not in KINDS:
            raise ValueError(f"unknown server kind {kind!r} (have: {KINDS})")
        if num_gpus < 1:
            raise ValueError("num_gpus must be >= 1")
        self.kind = kind
        self.model = model
        self.model_args = dict(model_args or {})
        self.num_gpus = num_gpus
        self.name = name
        self.config = config
        self.policies = dict(policies or {})
        self.params = dict(params or {})
        self.sla = dict(sla) if sla is not None else None
        self.memory = dict(memory) if memory is not None else None
        self.energy = dict(energy) if energy is not None else None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "model": self.model,
            "model_args": dict(self.model_args),
            "num_gpus": self.num_gpus,
            "name": self.name,
            "config": self.config,
            "policies": dict(self.policies),
            "params": dict(self.params),
            "sla": dict(self.sla) if self.sla is not None else None,
            "memory": dict(self.memory) if self.memory is not None else None,
            "energy": dict(self.energy) if self.energy is not None else None,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ServerSpec":
        return cls(
            kind=data["kind"],
            model=data["model"],
            model_args=data.get("model_args"),
            num_gpus=data.get("num_gpus", 1),
            name=data.get("name"),
            config=data.get("config"),
            policies=data.get("policies"),
            params=data.get("params"),
            sla=data.get("sla"),
            memory=data.get("memory"),
            energy=data.get("energy"),
        )

    def replace(self, **changes: Any) -> "ServerSpec":
        """A copy with the given fields replaced (specs are value objects)."""
        data = self.to_dict()
        data.update(changes)
        return ServerSpec.from_dict(data)

    def __eq__(self, other: Any) -> bool:
        return isinstance(other, ServerSpec) and self.to_dict() == other.to_dict()

    def __repr__(self) -> str:
        label = self.name if self.name is not None else "<default name>"
        return (
            f"ServerSpec({self.kind}, model={self.model}, "
            f"num_gpus={self.num_gpus}, name={label!r})"
        )


class ClusterSpec:
    """A serving cluster, as data: N replicas of one :class:`ServerSpec`
    behind a front-end router (see :mod:`repro.cluster`).

    Parameters
    ----------
    replica:
        The spec every replica is built from.  Without ``device_classes``
        the cluster is homogeneous; with them, replicas are built from the
        same spec re-calibrated per class (cost-model tables, latency
        scale, energy envelope).
    num_replicas:
        Initial replica count (the autoscaler may add or drain replicas
        at runtime, within its configured bounds).
    router:
        Routing-policy name (``round_robin`` / ``least_outstanding`` /
        ``shortest_queue`` / ``length_bucketed``); validated when the
        cluster is built, so specs stay plain data.
    router_params:
        Policy knobs, e.g. ``{"bucket_width": 16}`` for length-bucketed
        routing.
    seed:
        Base seed for routing tie-breaks — every tie-break is a pure
        function of ``(seed, request_id)`` and the tied replica ids.
    autoscaler:
        ``AutoscalerConfig.to_dict()`` form (see
        :mod:`repro.cluster.autoscaler`); None disables autoscaling and
        the cluster keeps exactly ``num_replicas`` replicas.
    name:
        Display name; None derives one from the router and replica count.
    sla:
        ``SLAConfig.to_dict()`` form for the *front door*: cluster-level
        admission control sheds arrivals whose predicted completion misses
        their deadline (``default_deadline``) or whose best predicted wait
        exceeds ``max_queue_delay``.  Independent of the replica spec's
        own ``sla``; None disables admission control entirely.
    memory:
        ``MemorySpec.to_dict()`` form for the *front door*: when its
        ``admission_free_bytes`` is set, arrivals are rejected while no
        alive replica reports at least that much free device memory
        (``"memory_reject"``).  Routing by free memory additionally needs
        the replica spec itself to carry a ``memory`` field — without one
        every replica reports infinite free bytes and this is inert.
    energy:
        ``EnergySpec.to_dict()`` form applied as the *default* energy
        envelope of every batchmaker replica that does not carry its own
        ``energy`` field (a device class's ``energy`` entry wins over
        this).  None leaves replicas exactly as their spec declares them —
        the bit-identity-guaranteed path.
    device_classes:
        Heterogeneous fleet declaration: a list of dicts, one per device
        class, each with ``name`` (unique), ``replicas`` (how many of the
        initial fleet are this class), and optionally ``latency_scale``
        (uniform slowdown of the replica's calibrated cost model, > 0,
        e.g. 2.0 for a device half as fast), ``tables`` (cell-name ->
        :data:`repro.gpu.costmodel.NAMED_TABLES` entry, re-calibrating
        individual cells, e.g. ``{"lstm": "cpu_lstm_step"}``) and
        ``energy`` (``EnergySpec.to_dict()`` form for this class).  Class
        replica counts must sum to ``num_replicas``; initial replica ids
        are assigned to classes in declaration order.  Autoscaler spawns
        pick the class most under-provisioned relative to the declared
        mix.  None (the default) keeps the homogeneous cluster.
    """

    def __init__(
        self,
        replica: "ServerSpec",
        num_replicas: int = 1,
        router: str = "round_robin",
        router_params: Optional[Dict[str, Any]] = None,
        seed: int = 0,
        autoscaler: Optional[Dict[str, Any]] = None,
        name: Optional[str] = None,
        sla: Optional[Dict[str, Any]] = None,
        memory: Optional[Dict[str, Any]] = None,
        energy: Optional[Dict[str, Any]] = None,
        device_classes: Optional[list] = None,
    ):
        if not isinstance(replica, ServerSpec):
            raise TypeError(f"replica must be a ServerSpec, got {type(replica)!r}")
        if num_replicas < 1:
            raise ValueError("num_replicas must be >= 1")
        if device_classes is not None:
            device_classes = [dict(c) for c in device_classes]
            if not device_classes:
                raise ValueError("device_classes must be non-empty when given")
            names = [c.get("name") for c in device_classes]
            if any(not isinstance(n, str) or not n for n in names):
                raise ValueError("every device class needs a non-empty name")
            if len(set(names)) != len(names):
                raise ValueError(f"device class names must be unique, got {names}")
            counts = [int(c.get("replicas", 0)) for c in device_classes]
            if any(n < 1 for n in counts):
                raise ValueError("every device class needs replicas >= 1")
            if sum(counts) != int(num_replicas):
                raise ValueError(
                    f"device class replicas {counts} must sum to "
                    f"num_replicas={num_replicas}"
                )
            for c in device_classes:
                scale = c.get("latency_scale", 1.0)
                if not scale > 0:
                    raise ValueError(
                        f"latency_scale must be positive, got {scale} "
                        f"for class {c['name']!r}"
                    )
        self.replica = replica
        self.num_replicas = int(num_replicas)
        self.router = router
        self.router_params = dict(router_params or {})
        self.seed = int(seed)
        self.autoscaler = dict(autoscaler) if autoscaler is not None else None
        self.name = name
        self.sla = dict(sla) if sla is not None else None
        self.memory = dict(memory) if memory is not None else None
        self.energy = dict(energy) if energy is not None else None
        self.device_classes = device_classes

    def to_dict(self) -> Dict[str, Any]:
        return {
            "replica": self.replica.to_dict(),
            "num_replicas": self.num_replicas,
            "router": self.router,
            "router_params": dict(self.router_params),
            "seed": self.seed,
            "autoscaler": dict(self.autoscaler) if self.autoscaler is not None else None,
            "name": self.name,
            "sla": dict(self.sla) if self.sla is not None else None,
            "memory": dict(self.memory) if self.memory is not None else None,
            "energy": dict(self.energy) if self.energy is not None else None,
            "device_classes": (
                [dict(c) for c in self.device_classes]
                if self.device_classes is not None
                else None
            ),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ClusterSpec":
        return cls(
            replica=ServerSpec.from_dict(data["replica"]),
            num_replicas=data.get("num_replicas", 1),
            router=data.get("router", "round_robin"),
            router_params=data.get("router_params"),
            seed=data.get("seed", 0),
            autoscaler=data.get("autoscaler"),
            name=data.get("name"),
            sla=data.get("sla"),
            memory=data.get("memory"),
            energy=data.get("energy"),
            device_classes=data.get("device_classes"),
        )

    def replace(self, **changes: Any) -> "ClusterSpec":
        """A copy with the given fields replaced (specs are value objects)."""
        data = self.to_dict()
        data.update(changes)
        if isinstance(data["replica"], ServerSpec):  # replace(replica=spec)
            data["replica"] = data["replica"].to_dict()
        return ClusterSpec.from_dict(data)

    def __eq__(self, other: Any) -> bool:
        return isinstance(other, ClusterSpec) and self.to_dict() == other.to_dict()

    def __repr__(self) -> str:
        return (
            f"ClusterSpec({self.router} x{self.num_replicas}, "
            f"replica={self.replica!r}, "
            f"autoscaler={'on' if self.autoscaler else 'off'})"
        )


class ServeSpec:
    """A live serving deployment, as data (see :mod:`repro.serve`).

    Wraps either a single :class:`ServerSpec` or a :class:`ClusterSpec`
    (exactly one) with the front-end's runtime knobs.  Like the other
    specs it is a JSON-round-trippable value object, so a deployment can
    be checked in, diffed, and rebuilt exactly.

    Parameters
    ----------
    server / cluster:
        The engine behind the front door; exactly one must be given.
    host, port:
        Listen address.  ``port=0`` binds an ephemeral port (tests).
    journal:
        Path of the append-only request-journal JSONL; None disables
        persistence (the status store then lives in memory only).
    drain_grace:
        Seconds a graceful shutdown waits for in-flight requests before
        aborting the stragglers (the store marks them ABORTED).
    drift_tolerance:
        Seconds of timer lateness tolerated before the bridge's drift
        guard logs/counts a late fire (default 1 ms).
    """

    def __init__(
        self,
        server: Optional[ServerSpec] = None,
        cluster: Optional["ClusterSpec"] = None,
        host: str = "127.0.0.1",
        port: int = 8123,
        journal: Optional[str] = None,
        drain_grace: float = 5.0,
        drift_tolerance: float = 1e-3,
    ):
        if (server is None) == (cluster is None):
            raise ValueError("exactly one of server= / cluster= must be given")
        if server is not None and not isinstance(server, ServerSpec):
            raise TypeError(f"server must be a ServerSpec, got {type(server)!r}")
        if cluster is not None and not isinstance(cluster, ClusterSpec):
            raise TypeError(f"cluster must be a ClusterSpec, got {type(cluster)!r}")
        if not 0 <= int(port) <= 65535:
            raise ValueError(f"port must be in [0, 65535], got {port}")
        if drain_grace < 0:
            raise ValueError("drain_grace must be non-negative")
        if drift_tolerance <= 0:
            raise ValueError("drift_tolerance must be positive")
        self.server = server
        self.cluster = cluster
        self.host = host
        self.port = int(port)
        self.journal = journal
        self.drain_grace = float(drain_grace)
        self.drift_tolerance = float(drift_tolerance)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "server": self.server.to_dict() if self.server is not None else None,
            "cluster": self.cluster.to_dict() if self.cluster is not None else None,
            "host": self.host,
            "port": self.port,
            "journal": self.journal,
            "drain_grace": self.drain_grace,
            "drift_tolerance": self.drift_tolerance,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ServeSpec":
        server = data.get("server")
        cluster = data.get("cluster")
        return cls(
            server=ServerSpec.from_dict(server) if server is not None else None,
            cluster=ClusterSpec.from_dict(cluster) if cluster is not None else None,
            host=data.get("host", "127.0.0.1"),
            port=data.get("port", 8123),
            journal=data.get("journal"),
            drain_grace=data.get("drain_grace", 5.0),
            drift_tolerance=data.get("drift_tolerance", 1e-3),
        )

    def replace(self, **changes: Any) -> "ServeSpec":
        """A copy with the given fields replaced (specs are value objects)."""
        data = self.to_dict()
        data.update(changes)
        if isinstance(data["server"], ServerSpec):
            data["server"] = data["server"].to_dict()
        if isinstance(data["cluster"], ClusterSpec):
            data["cluster"] = data["cluster"].to_dict()
        return ServeSpec.from_dict(data)

    def __eq__(self, other: Any) -> bool:
        return isinstance(other, ServeSpec) and self.to_dict() == other.to_dict()

    def __repr__(self) -> str:
        target = self.cluster if self.cluster is not None else self.server
        return f"ServeSpec({self.host}:{self.port}, target={target!r})"

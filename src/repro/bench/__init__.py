"""Engine performance benchmarks (``python -m repro.bench``).

Times the two hot paths this reproduction's scale story depends on — the
scheduler decision loop and the experiment sweep — and records the numbers
in ``BENCH_engine.json`` so successive PRs carry a perf trajectory.  See
:mod:`repro.bench.engine` for the harness and ``benchmarks/bench_engine.py``
for the repo-root entry point.
"""

from repro.bench.engine import (
    bench_cluster_routing,
    bench_fig7_quick,
    bench_scheduler,
    check_regression,
    main,
    run_engine_bench,
)
from repro.bench.sustained import bench_sustained, bench_sustained_policy

__all__ = [
    "bench_cluster_routing",
    "bench_fig7_quick",
    "bench_scheduler",
    "bench_sustained",
    "bench_sustained_policy",
    "check_regression",
    "main",
    "run_engine_bench",
]

"""Sustained-throughput macro-benchmark for the cluster front end.

Pushes a million-request stream through a real routing stack — actual
:class:`~repro.cluster.replica.Replica` objects, the event-driven
:class:`~repro.cluster.load_index.LoadIndex`, the registered routing
policies — and measures what the control plane sustains end to end:
requests/sec through route + completion bookkeeping, and the p50/p99 of
the routing decision itself.

The replica *engines* are stubbed out (accepting a shadow is a no-op);
queueing is modelled by a sliding completion window of ``window``
in-flight shadows, so every request produces the same index traffic a
serving cluster produces — one routed delta, one terminal delta, one EWMA
update — and the index can never coast on its clean-state cache.  That
makes this the honest macro companion to the static micro-bench in
:mod:`repro.bench.engine`: steady-state churn, not cached repeats.

Deterministic by construction: fixed request pool, fixed completion
latencies, seeded tie-breaks.  ``assert``-level sanity (every policy makes
exactly ``num_requests`` decisions) is checked inline.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Dict, Optional, Sequence

try:  # percentile math; optional like everywhere else in the tree
    import numpy as _np
except ImportError:  # pragma: no cover - the toolchain ships numpy
    _np = None

SUSTAINED_REQUESTS = 1_000_000
SUSTAINED_REPLICAS = 8
# In-flight shadows before the oldest completes: keeps per-replica
# outstanding counts realistic (window / replicas each) and guarantees
# steady completion churn.
COMPLETION_WINDOW = 64
# Shadow latencies cycle through these (seconds): enough spread to move
# every replica's EWMA and create real projected-delay differences.
LATENCY_CYCLE = (0.8e-3, 1.3e-3, 2.1e-3, 0.9e-3, 3.4e-3, 1.1e-3, 1.7e-3)
# Payload lengths cycle (mixed, same shape as the micro-bench) so length
# bucketing does real bucketing.
LENGTH_CYCLE = (4, 12, 19, 27, 45, 70, 121, 8)
# Reclaim terminal-list memory this often; preserves every outstanding
# count, so routing decisions are unaffected.
COMPACT_EVERY = 1 << 16


def _build_pool(num_replicas: int):
    """A routable replica pool with an attached load index, engines
    stubbed (the window loop plays the part of the engine)."""
    from repro.cluster.load_index import LoadIndex
    from repro.cluster.replica import Replica
    from repro.server import InferenceServer
    from repro.sim.events import EventLoop

    class _NullServer(InferenceServer):
        def _accept(self, request):
            """Queueing is modelled by the completion window, not an engine."""

    loop = EventLoop()
    index = LoadIndex(now=loop.now)
    replicas = []
    for rid in range(num_replicas):
        replica = Replica(rid, _NullServer(loop, f"sustained#{rid}"))
        index.register(replica)
        replicas.append(replica)
    return index, replicas


def _compact(replicas) -> None:
    """Drop reconciled terminal shadows; ``outstanding()`` is routed minus
    terminal-list lengths, so shrinking both sides by the same amount is
    invisible to every routing decision."""
    for replica in replicas:
        server = replica.server
        done = len(server.finished)
        if done:
            replica.routed -= done
            server.finished.clear()


def bench_sustained_policy(
    policy: str,
    num_requests: int = SUSTAINED_REQUESTS,
    num_replicas: int = SUSTAINED_REPLICAS,
    window: int = COMPLETION_WINDOW,
    seed: int = 7,
) -> Dict:
    """Run ``num_requests`` through one routing policy; see module doc."""
    from repro.cluster.routing import make_router
    from repro.core.request import InferenceRequest

    index, replicas = _build_pool(num_replicas)
    router = make_router(policy, seed=seed)
    router.attach_index(index)

    pool = [
        InferenceRequest(i, LENGTH_CYCLE[i % len(LENGTH_CYCLE)], 0.0)
        for i in range(4096)
    ]
    in_flight = deque()
    if _np is not None:
        decision_ns = _np.empty(num_requests, dtype=_np.int64)
    else:
        decision_ns = [0] * num_requests

    perf_ns = time.perf_counter_ns
    start = time.perf_counter()
    for i in range(num_requests):
        logical = pool[i % len(pool)]
        candidates = index.routable()
        t0 = perf_ns()
        replica = router.choose(logical, candidates)
        decision_ns[i] = perf_ns() - t0
        shadow = replica.route(logical, 0.0)
        in_flight.append((replica, shadow))
        if len(in_flight) > window:
            done_replica, done_shadow = in_flight.popleft()
            done_replica.shadow_of.pop(done_shadow.request_id, None)
            done_replica.server.finished.append(done_shadow)
            listener = done_replica.server.load_listener
            if listener is not None:
                listener()
            done_replica.observe_latency(
                LATENCY_CYCLE[i % len(LATENCY_CYCLE)]
            )
        if (i + 1) % COMPACT_EVERY == 0:
            _compact(replicas)
    elapsed = time.perf_counter() - start

    if router.decisions != num_requests:
        raise RuntimeError(
            f"{policy}: {router.decisions} decisions for "
            f"{num_requests} requests"
        )
    if _np is not None:
        p50_us = float(_np.percentile(decision_ns, 50)) / 1e3
        p99_us = float(_np.percentile(decision_ns, 99)) / 1e3
    else:
        ranked = sorted(decision_ns)
        p50_us = ranked[len(ranked) // 2] / 1e3
        p99_us = ranked[min(len(ranked) - 1, int(len(ranked) * 0.99))] / 1e3
    return {
        "requests": num_requests,
        "num_replicas": num_replicas,
        "window": window,
        "seconds": elapsed,
        "requests_per_sec": num_requests / elapsed if elapsed else 0.0,
        "decision_p50_us": p50_us,
        "decision_p99_us": p99_us,
        "index": index.stats.as_dict(),
    }


def bench_sustained(
    num_requests: int = SUSTAINED_REQUESTS,
    num_replicas: int = SUSTAINED_REPLICAS,
    policies: Optional[Sequence[str]] = None,
    window: int = COMPLETION_WINDOW,
    seed: int = 7,
) -> Dict[str, Dict]:
    """The full sustained sweep: every registered routing policy (or the
    given subset), identical request counts per policy."""
    from repro.cluster.routing import ROUTERS

    names = sorted(ROUTERS) if policies is None else list(policies)
    return {
        name: bench_sustained_policy(
            name,
            num_requests=num_requests,
            num_replicas=num_replicas,
            window=window,
            seed=seed,
        )
        for name in names
    }

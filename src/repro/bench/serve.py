"""Serving front-end overhead benchmarks (:mod:`repro.serve`).

Three prices, measured separately so a regression names its layer:

* ``submit`` — :meth:`ServeApp.submit_payload` driven directly (no
  sockets): journalling to the store, engine submit, and the inline
  arrival pump.  This is the per-request cost the front end adds on the
  submit path before any network byte moves.
* ``sync`` — the engine-outcome -> store-record fold
  (:meth:`ServeApp.sync`, run after every timer pump): seconds of sync
  per terminal outcome.  This is the "complete -> status visible" price.
* ``http`` — requests/sec through the full socket path: a live threaded
  server plus the keep-alive loadgen client with all arrival delays
  collapsed (``time_scale=0``), i.e. the closed-loop throughput ceiling
  of the hand-rolled HTTP/1.1 layer on this host.

All three run the in-memory store (journal I/O is priced by the store
tests, not here) and report rates the 2x regression gate in
:mod:`repro.bench.engine` checks against the committed baseline.
"""

from __future__ import annotations

import time
from typing import Dict

SUBMIT_PAYLOAD = 8  # short chains: the engine cost stays off the books


def _drain(app, timeout: float = 30.0) -> None:
    deadline = time.monotonic() + timeout
    while app.store.terminal_count() < len(app.store) and time.monotonic() < deadline:
        app.live.pump_now()
        time.sleep(0.0005)


def bench_submit(num_requests: int = 2000) -> Dict:
    """us per submit through the transport-independent front-end path."""
    from repro.registry.presets import lstm_serve_spec
    from repro.serve.frontend import ServeApp

    app = ServeApp(lstm_serve_spec(port=0))
    start = time.perf_counter()
    for _ in range(num_requests):
        app.submit_payload(SUBMIT_PAYLOAD)
    elapsed = time.perf_counter() - start
    _drain(app)
    rate = num_requests / elapsed if elapsed > 0 else 0.0
    return {
        "requests": num_requests,
        "seconds": elapsed,
        "submits_per_sec": rate,
        "us_per_submit": 1e6 / rate if rate > 0 else None,
    }


def bench_sync(num_requests: int = 2000) -> Dict:
    """us of sync work per terminal outcome (complete -> status visible)."""
    from repro.registry.presets import lstm_serve_spec
    from repro.serve.frontend import ServeApp

    app = ServeApp(lstm_serve_spec(port=0))
    sync_seconds = 0.0
    inner = app.sync

    def timed_sync() -> int:
        nonlocal sync_seconds
        start = time.perf_counter()
        moved = inner()
        sync_seconds += time.perf_counter() - start
        return moved

    app.sync = timed_sync
    for _ in range(num_requests):
        app.submit_payload(SUBMIT_PAYLOAD)
    _drain(app)
    outcomes = app.store.terminal_count()
    rate = outcomes / sync_seconds if sync_seconds > 0 else 0.0
    return {
        "outcomes": outcomes,
        "sync_seconds": sync_seconds,
        "outcomes_per_sec": rate,
        "us_per_outcome": 1e6 / rate if rate > 0 else None,
    }


def bench_http(num_requests: int = 1000, concurrency: int = 16) -> Dict:
    """Requests/sec through the live socket path, submit to terminal."""
    import asyncio

    from repro.registry.presets import lstm_serve_spec
    from repro.serve.frontend import start_in_thread
    from repro.serve.loadgen import run_loadgen

    handle = start_in_thread(lstm_serve_spec(port=0))
    try:
        report = asyncio.run(
            run_loadgen(
                "127.0.0.1",
                handle.port,
                rate=1e9,  # the plan's offsets, collapsed by time_scale=0
                num_requests=num_requests,
                concurrency=concurrency,
                time_scale=0.0,
                dataset="fixed",
            )
        )
    finally:
        handle.stop()
    rate = (
        num_requests / report.wall_seconds if report.wall_seconds > 0 else 0.0
    )
    return {
        "requests": num_requests,
        "concurrency": concurrency,
        "seconds": report.wall_seconds,
        "requests_per_sec": rate,
        "completed": len(report.records),
        "p50_ms": report.percentile_ms(50),
        "p99_ms": report.percentile_ms(99),
    }


def bench_serve(
    submit_requests: int = 2000,
    http_requests: int = 1000,
) -> Dict[str, Dict]:
    return {
        "submit": bench_submit(submit_requests),
        "sync": bench_sync(submit_requests),
        "http": bench_http(http_requests),
    }

"""Benchmark harness for the scheduling/simulation engine.

Measurements:

* **Scheduler decisions/sec** at fixed queue depths, fast path vs the
  retained brute-force reference (``BatchingConfig(fast_path=False)``).
  The queue is populated the way a loaded multi-GPU server's queues look
  in the paper's Figure 7/13 regime: thousands of released chain
  subgraphs, most of them pinned to *other* workers, so the brute-force
  ``FormBatchedTask`` scan walks past them on every decision and the
  tier-selection recounts every subgraph's ready nodes.

* **Cluster routing decisions/sec** per policy, indexed fast path (the
  event-driven :class:`~repro.cluster.load_index.LoadIndex`) vs the
  retained brute-force scan (``fast_path=False``), identical decision
  counts for every policy and both paths, with an inline decision-sequence
  equality check.

* **Sustained throughput** (:mod:`repro.bench.sustained`): 10^6 requests
  through an 8-replica pool per routing policy with steady completion
  churn — end-to-end requests/sec plus p50/p99 decision latency.

* **Memory accounting** (:mod:`repro.gpu.memory` +
  :class:`~repro.policies.memory.MemoryAwareFormation`): raw
  reserve/release pairs/sec on one :class:`MemoryModel`, and the
  per-kick ``form()`` cost across the policy's states — inert
  pass-through (no spec attached: must cost the same as the paper
  formation), active with a roomy budget (the fit filter runs and keeps
  everything), and active under pressure (every member defers).

* **Energy accounting** (:mod:`repro.gpu.energy`): raw ``charge_task``
  calls/sec on one :class:`EnergyModel`, ``decide()`` calls/sec per
  registered DVFS governor, and the whole-run serving overhead of a
  V100 energy spec vs the identical energy-blind run (the cost the
  ``energy_spec is None`` guards are protecting against).

* **Serving front end** (:mod:`repro.bench.serve`): submit-path cost
  through ``ServeApp.submit_payload``, engine-outcome -> store sync cost
  per terminal, and end-to-end requests/sec through the live HTTP/1.1
  socket path.

* **Quick Fig-7 sweep wall-clock**, serial vs ``--jobs``-parallel, with an
  identical-summaries cross-check (the parallel runner must change nothing
  but the wall-clock).

Results are written to ``BENCH_engine.json`` (repo root) so future PRs can
compare; ``--check`` fails when decisions/sec (or sustained requests/sec)
regress by more than 2x against a committed baseline file.  ``--profile``
prints the cProfile top-20 cumulative entries so hot-path hunts don't
start blind; ``--only`` restricts the run to named sections.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from typing import Dict, List, Optional

BENCH_SCHEMA = 9
DEFAULT_DEPTHS = (250, 1000, 4000)
SMOKE_DEPTHS = (250, 1000)
# Policy bundles timed by bench_policy_overhead: decision rate of the
# default Algorithm 1 bundle vs swapped-in variants at one queue depth.
POLICY_VARIANTS = (
    ("paper", {}),
    ("flat_priority", {"priority": "flat"}),
    ("longest_queue", {"priority": "longest_queue"}),
    ("no_mix", {"formation": "no_mix"}),
)
# Pinned-elsewhere fraction / worker count for the loaded-queue shape.
BENCH_WORKERS = 8
CHAIN_LENGTH = 32
REGRESSION_FACTOR = 2.0
# Replica-pool size for the cluster routing bench (the front end's cost
# per decision grows with the candidate list, so use a biggish pool).
CLUSTER_BENCH_REPLICAS = 8


class _BenchWorker:
    def __init__(self, worker_id: int):
        self.worker_id = worker_id


def _build_loaded_scheduler(fast_path: bool, depth: int, policies=None):
    """A scheduler whose single queue holds ``depth`` chain subgraphs, 7/8
    of them pinned to workers other than the one we schedule for."""
    from repro.core.cell_graph import CellGraph
    from repro.core.config import BatchingConfig
    from repro.core.request import InferenceRequest
    from repro.core.scheduler import Scheduler
    from repro.core.subgraph import partition_into_subgraphs
    from repro.models import LSTMChainModel

    model = LSTMChainModel()
    # max_batch 4 / one task per round isolates the per-decision scheduling
    # cost (the quantity under test) from the per-node commit cost that the
    # fast and brute-force paths share.
    config = BatchingConfig.with_max_batch(
        4, max_tasks_to_submit=1, fast_path=fast_path
    )
    if policies is not None:
        policies.placement.prepare(BENCH_WORKERS)
    scheduler = Scheduler(config, submit=lambda task, worker: None, policies=policies)
    for cell_type in model.cell_types():
        scheduler.register_cell_type(cell_type)
    for rid in range(depth):
        graph = CellGraph()
        model.unfold(graph, CHAIN_LENGTH)
        request = InferenceRequest(rid, CHAIN_LENGTH, 0.0)
        request.graph = graph
        subgraphs = partition_into_subgraphs(graph, request, start_id=rid)
        request.subgraphs = {sg.subgraph_id: sg for sg in subgraphs}
        for sg in subgraphs:
            scheduler.add_subgraph(sg)
            # Interleave pinned-elsewhere subgraphs with worker-0-eligible
            # ones so eligibility is scattered through the FIFO.
            if rid % BENCH_WORKERS != 0:
                sg.pin(1 + rid % (BENCH_WORKERS - 1))
    return scheduler


def _time_decisions(scheduler, max_seconds: float, max_decisions: int) -> Dict:
    worker = _BenchWorker(0)
    decisions = 0
    start = time.perf_counter()
    while decisions < max_decisions:
        if scheduler.schedule(worker) == 0:
            break  # worker-0-eligible work drained
        decisions += 1
        if time.perf_counter() - start >= max_seconds:
            break
    elapsed = time.perf_counter() - start
    rate = decisions / elapsed if elapsed > 0 else 0.0
    return {
        "decisions": decisions,
        "seconds": elapsed,
        "decisions_per_sec": rate,
        "us_per_decision": 1e6 / rate if rate > 0 else None,
    }


def bench_scheduler(
    depths=DEFAULT_DEPTHS, max_seconds: float = 2.0, max_decisions: int = 2000
) -> Dict[str, Dict]:
    """Decisions/sec, fast path vs brute-force reference, per queue depth."""
    results: Dict[str, Dict] = {}
    for depth in depths:
        fast = _time_decisions(
            _build_loaded_scheduler(True, depth), max_seconds, max_decisions
        )
        brute = _time_decisions(
            _build_loaded_scheduler(False, depth), max_seconds, max_decisions
        )
        speedup = (
            fast["decisions_per_sec"] / brute["decisions_per_sec"]
            if brute["decisions_per_sec"]
            else float("inf")
        )
        results[f"depth_{depth}"] = {
            "queue_depth": depth,
            "fast": fast,
            "brute_force": brute,
            "speedup": speedup,
        }
    return results


def bench_policy_overhead(
    depth: int = 1000, max_seconds: float = 2.0, max_decisions: int = 1000
) -> Dict[str, Dict]:
    """Scheduler-decision cost through the policy layer.

    Times the default Algorithm 1 bundle and each swapped variant on the
    same loaded queue (fast path).  ``vs_paper`` is the decision-rate
    ratio against the default bundle — the per-decision overhead (or
    saving) a policy swap costs.  The 2x regression gate stays on the
    ``scheduler.*.fast`` numbers, which compare the default bundle
    against the committed pre-policy-layer baseline.
    """
    from repro.core.config import BatchingConfig
    from repro.policies import bundle_from_names

    config = BatchingConfig.with_max_batch(4, max_tasks_to_submit=1)
    results: Dict[str, Dict] = {}
    paper_rate = None
    for name, overrides in POLICY_VARIANTS:
        bundle = bundle_from_names(config, **overrides)
        timing = _time_decisions(
            _build_loaded_scheduler(True, depth, policies=bundle),
            max_seconds,
            max_decisions,
        )
        if name == "paper":
            paper_rate = timing["decisions_per_sec"]
        timing["vs_paper"] = (
            timing["decisions_per_sec"] / paper_rate if paper_rate else None
        )
        results[name] = {"queue_depth": depth, **timing}
    return results


class _FakeSLAManager:
    """The minimal manager surface LazyKickPolicy.attach_engine needs:
    a clock, the SLA, and a poke target for the wake timer."""

    class _Kicker:
        def kick(self) -> None:
            pass

    def __init__(self, loop, sla):
        self.loop = loop
        self.sla = sla
        self._poke = self._Kicker()
        self.predictor = None


def bench_slo(depth: int = 1000, calls: int = 2000) -> Dict[str, Dict]:
    """Slack-computation overhead per kick decision.

    Times ``formation.form()`` — the call the scheduler makes for every
    kick decision — on one loaded queue, across the lazy-kick states:

    * ``paper`` — the baseline formation;
    * ``lazy_inert`` — LazyKickPolicy without an SLA (must cost the same
      as paper: the pass-through is a single attribute check);
    * ``lazy_hold`` — active policy, abundant slack: the slack scan runs
      and the hold path re-checks its deduplicated wake timer;
    * ``lazy_kick`` — active policy, expired slack: the slack scan runs
      and the plan is released.

    ``vs_paper`` is the per-call cost ratio; the 2x regression gate is on
    ``forms_per_sec`` so a superlinear slack scan cannot land silently.
    """
    from repro.core.config import BatchingConfig
    from repro.faults.sla import SLAConfig
    from repro.policies import bundle_from_names
    from repro.sim.events import EventLoop

    config = BatchingConfig.with_max_batch(4, max_tasks_to_submit=1)
    worker = _BenchWorker(0)
    scenarios = (
        ("paper", None, None, None),
        ("lazy_inert", "lazy_kick", None, None),
        ("lazy_hold", "lazy_kick", SLAConfig(default_deadline=0.5), 1.0),
        ("lazy_kick", "lazy_kick", SLAConfig(default_deadline=0.5), 0.0),
    )
    results: Dict[str, Dict] = {}
    paper_rate = None
    for name, formation, sla, deadline in scenarios:
        bundle = bundle_from_names(
            config, **({"formation": formation} if formation else {})
        )
        scheduler = _build_loaded_scheduler(True, depth, policies=bundle)
        policy = bundle.formation
        if sla is not None:
            policy.attach_engine(_FakeSLAManager(EventLoop(), sla))
            # A plausible per-node service estimate, so the slack scan
            # exercises the real predicted_service path.
            policy.predictor.observe_task(2e-3, 4)
        queue = next(iter(scheduler._queues.values()))
        if deadline is not None:
            for sg in queue.subgraphs.values():
                sg.request.deadline = deadline
        form = policy.form
        start = time.perf_counter()
        for _ in range(calls):
            form(queue, worker)
        elapsed = time.perf_counter() - start
        rate = calls / elapsed if elapsed > 0 else 0.0
        if name == "paper":
            paper_rate = rate
        results[name] = {
            "queue_depth": depth,
            "calls": calls,
            "seconds": elapsed,
            "forms_per_sec": rate,
            "us_per_form": 1e6 / rate if rate > 0 else None,
            "vs_paper": rate / paper_rate if paper_rate else None,
        }
    return results


class _BenchMemDevice:
    """The device surface MemoryAwareFormation.form touches: ``.memory``."""

    def __init__(self, memory):
        self.memory = memory


class _BenchMemWorker(_BenchWorker):
    def __init__(self, worker_id: int, memory):
        super().__init__(worker_id)
        self.device = _BenchMemDevice(memory)


class _FakeMemoryManager:
    """The minimal manager surface MemoryAwareFormation.attach_engine and
    the defer path need: the spec, a clock for the retry poke, and a poke
    target.  The cancel/evict paths are deliberately out of reach — the
    bench scenarios are constructed so no member is ever hopeless."""

    class _Kicker:
        def kick(self) -> None:
            pass

    def __init__(self, loop, spec):
        self.loop = loop
        self.memory_spec = spec
        self._poke = self._Kicker()


def bench_memory(
    depth: int = 1000, calls: int = 2000, reserve_ops: int = 200_000
) -> Dict[str, Dict]:
    """Memory-accounting overhead: the raw model and the kick filter.

    ``model`` times reserve/release pairs on one :class:`MemoryModel` —
    the accounting cost every dynamic-decode step pays when a budget is
    configured.  ``form`` times the formation call across the policy's
    states on one loaded queue:

    * ``paper`` — the baseline formation;
    * ``aware_inert`` — MemoryAwareFormation without a spec (must cost
      the same as paper: the pass-through is a single attribute check);
    * ``aware_fit`` — active policy, roomy budget: the fit filter walks
      the plan and keeps every member;
    * ``aware_defer`` — active policy, zero free bytes: every member
      defers (the steady state of a device under pressure).

    ``vs_paper`` is the per-call cost ratio; the 2x regression gate is
    on ``pairs_per_sec`` and ``forms_per_sec`` so neither the accounting
    nor the filter can grow superlinear silently.
    """
    from repro.core.config import BatchingConfig
    from repro.gpu.memory import DEFAULT_STATE_BYTES, MemoryModel, MemorySpec
    from repro.policies import bundle_from_names
    from repro.sim.events import EventLoop

    model = MemoryModel(capacity=1 << 40)
    start = time.perf_counter()
    for i in range(reserve_ops):
        model.reserve(i & 1023, DEFAULT_STATE_BYTES)
        model.release(i & 1023, DEFAULT_STATE_BYTES)
    elapsed = time.perf_counter() - start
    pair_rate = reserve_ops / elapsed if elapsed > 0 else 0.0
    results: Dict[str, Dict] = {
        "model": {
            "pairs": reserve_ops,
            "seconds": elapsed,
            "pairs_per_sec": pair_rate,
            "us_per_pair": 1e6 / pair_rate if pair_rate > 0 else None,
        }
    }

    config = BatchingConfig.with_max_batch(4, max_tasks_to_submit=1)
    # (name, capacity in state units, pre-reserved state units); None
    # capacity means no spec is attached and the policy stays inert.
    scenarios = (
        ("paper", None, 0),
        ("aware_inert", None, 0),
        ("aware_fit", 1 << 20, 0),
        ("aware_defer", 64, 64),
    )
    form_results: Dict[str, Dict] = {}
    paper_rate = None
    for name, capacity_units, held_units in scenarios:
        formation = {} if name == "paper" else {"formation": "memory_aware"}
        bundle = bundle_from_names(config, **formation)
        scheduler = _build_loaded_scheduler(True, depth, policies=bundle)
        policy = bundle.formation
        worker: _BenchWorker
        if capacity_units is None:
            worker = _BenchWorker(0)
        else:
            loop = EventLoop()
            # A far-future sentinel keeps loop.pending() > 0 so the defer
            # path stays a deferral (progress looks possible) instead of
            # escalating to the OOM triage the fake manager cannot serve.
            loop.call_after(1e9, lambda: None)
            spec = MemorySpec(capacity=capacity_units * DEFAULT_STATE_BYTES)
            policy.attach_engine(_FakeMemoryManager(loop, spec))
            memory = MemoryModel.from_spec(spec)
            if held_units:
                assert memory.reserve(10**9, held_units * DEFAULT_STATE_BYTES)
            worker = _BenchMemWorker(0, memory)
        queue = next(iter(scheduler._queues.values()))
        form = policy.form
        start = time.perf_counter()
        for _ in range(calls):
            form(queue, worker)
        elapsed = time.perf_counter() - start
        rate = calls / elapsed if elapsed > 0 else 0.0
        if name == "paper":
            paper_rate = rate
        form_results[name] = {
            "queue_depth": depth,
            "calls": calls,
            "seconds": elapsed,
            "forms_per_sec": rate,
            "us_per_form": 1e6 / rate if rate > 0 else None,
            "vs_paper": rate / paper_rate if paper_rate else None,
        }
    results["form"] = form_results
    return results


def bench_energy(
    charge_ops: int = 200_000,
    decisions: int = 200_000,
    num_requests: int = 800,
    rate: float = 5000.0,
) -> Dict:
    """Energy-accounting overhead: the raw books, the governors, and the
    whole-run cost of keeping them.

    * ``charge`` — tight-loop :meth:`EnergyModel.charge_task` calls with
      an 8-request batch (the per-kernel cost every submission pays when
      a spec is configured).
    * ``governors`` — ``decide()`` calls/sec per registered governor over
      a synthetic bursty busy-time stream (the per-batch-boundary DVFS
      cost; the stream swings between saturation and idle so the adaptive
      governors exercise both branches).
    * ``serving`` — wall-clock of one LSTM load point carrying the V100
      spec + race_to_idle governor vs the identical energy-blind run
      (best of 2 each): the end-to-end overhead the
      ``energy_spec is None`` guards are protecting against.

    The 2x regression gate is on ``charges_per_sec`` and each governor's
    ``decisions_per_sec`` so neither the books nor a governor can grow
    superlinear silently.
    """
    from repro.gpu.energy import GOVERNORS, EnergyModel, make_governor
    from repro.registry import build_server
    from repro.registry.presets import lstm_batchmaker_spec, lstm_energy_spec
    from repro.sim.timebase import measure_best
    from repro.workload import LoadGenerator, SequenceDataset

    model = EnergyModel()
    ids = list(range(8))
    start = time.perf_counter()
    for _ in range(charge_ops):
        model.charge_task(1e-4, ids)
    elapsed = time.perf_counter() - start
    charge_rate = charge_ops / elapsed if elapsed > 0 else 0.0
    results: Dict = {
        "charge": {
            "charges": charge_ops,
            "batch_requests": len(ids),
            "seconds": elapsed,
            "charges_per_sec": charge_rate,
            "us_per_charge": 1e6 / charge_rate if charge_rate > 0 else None,
        }
    }

    frequencies = (0.6, 0.8, 1.0)
    governor_results: Dict[str, Dict] = {}
    for name in sorted(GOVERNORS):
        governor = make_governor(name, frequencies)
        now = busy = 0.0
        start = time.perf_counter()
        for i in range(decisions):
            now += 1e-3
            if (i // 64) % 2 == 0:
                busy += 1e-3
            governor.decide(now, busy)
        elapsed = time.perf_counter() - start
        decide_rate = decisions / elapsed if elapsed > 0 else 0.0
        governor_results[name] = {
            "decisions": decisions,
            "seconds": elapsed,
            "decisions_per_sec": decide_rate,
            "us_per_decision": 1e6 / decide_rate if decide_rate > 0 else None,
        }
    results["governors"] = governor_results

    def run_once(energy: bool) -> None:
        spec = lstm_energy_spec() if energy else lstm_batchmaker_spec()
        server = build_server(spec)
        generator = LoadGenerator(rate=rate, num_requests=num_requests, seed=7)
        generator.run(server, SequenceDataset(seed=1))

    run_once(False)  # warm caches before timing either variant
    blind_s = measure_best(lambda: run_once(False), repeats=2)
    energized_s = measure_best(lambda: run_once(True), repeats=2)
    results["serving"] = {
        "run_requests": num_requests,
        "blind_seconds": blind_s,
        "energy_seconds": energized_s,
        "overhead_pct": (
            100.0 * (energized_s - blind_s) / blind_s if blind_s else None
        ),
    }
    return results


def _build_bench_replicas(num_replicas: int, indexed: bool):
    """Engine-free replicas with a scattered load profile (so the
    load-aware policies do real min-by-key work and hit the seeded
    tie-break).  ``indexed`` additionally registers them with a
    :class:`LoadIndex`, returned alongside."""
    from repro.cluster.load_index import LoadIndex
    from repro.cluster.replica import Replica
    from repro.server import InferenceServer
    from repro.sim.events import EventLoop

    index = LoadIndex() if indexed else None
    replicas = []
    for rid in range(num_replicas):
        replica = Replica(rid, InferenceServer(EventLoop(), f"bench#{rid}"))
        # Scattered outstanding counts with deliberate ties.
        replica.routed = (rid * 7) % 5
        replica.ewma_latency = 1e-3 * (1 + rid % 3)
        if index is not None:
            index.register(replica)
        replicas.append(replica)
    return replicas, index


def _time_routing(name: str, num_replicas: int, decisions: int, fast: bool):
    """Exactly ``decisions`` choices through one router; no time cap, so
    every policy and both paths report over identical decision counts (a
    prior revision capped on wall-clock mid-run, which made the per-policy
    decision totals — and thus the JSON — incomparable)."""
    from repro.cluster.routing import make_router
    from repro.core.request import InferenceRequest

    lengths = (4, 12, 19, 27, 45, 70, 121, 8)
    requests = [
        InferenceRequest(i, lengths[i % len(lengths)], 0.0) for i in range(4096)
    ]
    replicas, index = _build_bench_replicas(num_replicas, indexed=fast)
    router = make_router(name, seed=7, fast_path=fast)
    if index is not None:
        router.attach_index(index)
        candidates = index.routable()
    else:
        candidates = replicas
    n = len(requests)
    choose = router.choose
    # Best of 2 passes: routing is stateless w.r.t. these static loads, so
    # the second pass re-measures the same work and the min damps scheduler
    # noise out of the speedup ratio.
    elapsed = float("inf")
    for _ in range(2):
        start = time.perf_counter()
        for i in range(decisions):
            choose(requests[i % n], candidates)
        elapsed = min(elapsed, time.perf_counter() - start)
    rate = decisions / elapsed if elapsed > 0 else 0.0
    return {
        "decisions": decisions,
        "seconds": elapsed,
        "decisions_per_sec": rate,
        "us_per_decision": 1e6 / rate if rate > 0 else None,
    }


def _routing_decisions_identical(
    name: str, num_replicas: int, decisions: int = 4096
) -> bool:
    """Fresh routers, fast vs brute, same request stream: the chosen
    replica ids must match decision for decision."""
    from repro.cluster.routing import make_router
    from repro.core.request import InferenceRequest

    lengths = (4, 12, 19, 27, 45, 70, 121, 8)
    requests = [
        InferenceRequest(i, lengths[i % len(lengths)], 0.0)
        for i in range(decisions)
    ]
    chosen = []
    for fast in (True, False):
        replicas, index = _build_bench_replicas(num_replicas, indexed=fast)
        router = make_router(name, seed=7, fast_path=fast)
        if index is not None:
            router.attach_index(index)
            candidates = index.routable()
        else:
            candidates = replicas
        chosen.append(
            [router.choose(request, candidates).replica_id for request in requests]
        )
    return chosen[0] == chosen[1]


def bench_cluster_routing(
    num_replicas: int = CLUSTER_BENCH_REPLICAS,
    max_decisions: int = 200_000,
) -> Dict[str, Dict]:
    """Front-end routing decisions/sec, per policy, indexed fast path vs
    brute-force scan.

    Each policy runs exactly ``max_decisions`` decisions on both paths
    over the same mixed-length request stream, then a separate pass
    cross-checks that the two paths choose identical replica sequences.
    This isolates the router's per-decision cost from replica simulation
    time; :mod:`repro.bench.sustained` covers the churn regime where the
    index absorbs load deltas between decisions.
    """
    from repro.cluster.routing import ROUTERS

    results: Dict[str, Dict] = {}
    for name in sorted(ROUTERS):
        fast = _time_routing(name, num_replicas, max_decisions, fast=True)
        brute = _time_routing(name, num_replicas, max_decisions, fast=False)
        speedup = (
            fast["decisions_per_sec"] / brute["decisions_per_sec"]
            if brute["decisions_per_sec"]
            else float("inf")
        )
        results[name] = {
            "num_replicas": num_replicas,
            "decisions": max_decisions,
            "fast": fast,
            "brute_force": brute,
            "speedup": speedup,
            "identical_decisions": _routing_decisions_identical(
                name, num_replicas
            ),
        }
    return results


def bench_trace(
    record_events: int = 200_000, num_requests: int = 800, rate: float = 5000.0
) -> Dict:
    """Tracing cost: raw recording throughput and whole-run slowdown.

    * ``events_per_sec`` — tight-loop instants into a ring-buffer recorder
      (the per-event cost every instrumented site pays when tracing is on).
    * ``slowdown_pct`` — wall-clock of one traced LSTM load point vs the
      identical untraced run (best of 2 each); the end-to-end overhead the
      zero-cost-when-disabled guards are protecting against.
    """
    from repro.experiments import common
    from repro.sim.timebase import measure_best
    from repro.trace.recorder import TraceRecorder
    from repro.workload import LoadGenerator, SequenceDataset

    class _FixedClock:
        def now(self) -> float:
            return 0.0

    recorder = TraceRecorder(_FixedClock())
    scope = recorder.scope()
    start = time.perf_counter()
    for i in range(record_events):
        scope.instant("bench.event", "sched", request_id=i)
    record_seconds = time.perf_counter() - start
    events_per_sec = record_events / record_seconds if record_seconds else 0.0

    def run_once(traced: bool) -> None:
        server = common.lstm_batchmaker()
        if traced:
            server.attach_trace(TraceRecorder(server.loop))
        generator = LoadGenerator(rate=rate, num_requests=num_requests, seed=7)
        generator.run(server, SequenceDataset(seed=1))

    run_once(False)  # warm caches before timing either variant
    untraced_s = measure_best(lambda: run_once(False), repeats=2)
    traced_s = measure_best(lambda: run_once(True), repeats=2)
    slowdown_pct = (
        100.0 * (traced_s - untraced_s) / untraced_s if untraced_s else None
    )
    return {
        "record_events": record_events,
        "record_seconds": record_seconds,
        "events_per_sec": events_per_sec,
        "us_per_event": 1e6 / events_per_sec if events_per_sec else None,
        "run_requests": num_requests,
        "untraced_seconds": untraced_s,
        "traced_seconds": traced_s,
        "slowdown_pct": slowdown_pct,
    }


def bench_fig7_quick(jobs: int = 2) -> Dict:
    """Wall-clock of the quick Fig-7 LSTM sweep, serial vs parallel, plus
    an identical-results cross-check."""
    from repro.experiments import common, fig7_lstm

    start = time.perf_counter()
    serial = fig7_lstm.run(quick=True, max_batch=512, jobs=1)
    serial_s = time.perf_counter() - start

    parallel_supported = common.parallel_sweep_supported()
    if parallel_supported:
        start = time.perf_counter()
        parallel = fig7_lstm.run(quick=True, max_batch=512, jobs=jobs)
        parallel_s = time.perf_counter() - start
        identical = _summaries_identical(serial, parallel)
    else:
        parallel_s = None
        identical = None

    return {
        "jobs": jobs,
        "cpu_count": os.cpu_count(),
        "serial_seconds": serial_s,
        "parallel_seconds": parallel_s,
        "parallel_supported": parallel_supported,
        "identical_summaries": identical,
        "note": (
            "parallel speedup scales with min(jobs, cores); on a single-core "
            "host the parallel run only checks result identity"
        ),
    }


def _summaries_identical(a: Dict[str, List], b: Dict[str, List]) -> bool:
    def key(summary):
        return (
            summary.system,
            summary.offered_rate,
            summary.throughput,
            summary.p50_ms,
            summary.p90_ms,
            summary.p99_ms,
            tuple(summary.stats.latencies),
        )

    if a.keys() != b.keys():
        return False
    return all(
        [key(s) for s in a[system]] == [key(s) for s in b[system]]
        for system in a
    )


# Section names accepted by --only (fig7 only runs in full mode; sustained
# is skipped in smoke mode unless asked for explicitly, so the CI engine
# smoke job stays fast while the dedicated perf job runs it gated).
BENCH_SECTIONS = (
    "scheduler",
    "policies",
    "slo",
    "memory",
    "energy",
    "cluster",
    "trace",
    "serve",
    "sustained",
    "fig7",
)


def run_engine_bench(
    smoke: bool = False,
    jobs: int = 2,
    only: Optional[List[str]] = None,
    sustained_requests: Optional[int] = None,
) -> Dict:
    from repro.bench.sustained import SUSTAINED_REQUESTS, bench_sustained

    depths = SMOKE_DEPTHS if smoke else DEFAULT_DEPTHS
    max_decisions = 500 if smoke else 2000

    def wanted(section: str) -> bool:
        return only is None or section in only

    bench = {
        "schema": BENCH_SCHEMA,
        "mode": "smoke" if smoke else "full",
        "host": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpu_count": os.cpu_count(),
        },
    }
    if wanted("scheduler"):
        bench["scheduler"] = bench_scheduler(depths, max_decisions=max_decisions)
    if wanted("policies"):
        bench["policies"] = bench_policy_overhead(
            depth=SMOKE_DEPTHS[-1] if smoke else 1000,
            max_decisions=250 if smoke else 1000,
        )
    if wanted("slo"):
        bench["slo"] = bench_slo(
            depth=SMOKE_DEPTHS[-1] if smoke else 1000,
            calls=500 if smoke else 2000,
        )
    if wanted("memory"):
        bench["memory"] = bench_memory(
            depth=SMOKE_DEPTHS[-1] if smoke else 1000,
            calls=500 if smoke else 2000,
            reserve_ops=50_000 if smoke else 200_000,
        )
    if wanted("energy"):
        bench["energy"] = bench_energy(
            charge_ops=50_000 if smoke else 200_000,
            decisions=50_000 if smoke else 200_000,
            num_requests=300 if smoke else 800,
        )
    if wanted("cluster"):
        bench["cluster"] = bench_cluster_routing(
            max_decisions=50_000 if smoke else 200_000,
        )
    if wanted("trace"):
        bench["trace"] = bench_trace(
            record_events=50_000 if smoke else 200_000,
            num_requests=300 if smoke else 800,
        )
    if wanted("serve"):
        from repro.bench.serve import bench_serve

        bench["serve"] = bench_serve(
            submit_requests=500 if smoke else 2000,
            http_requests=300 if smoke else 1000,
        )
    # The sustained sweep is the expensive section (~30s at 10^6 x 4
    # policies); smoke mode skips it unless named via --only.
    if (only is not None and "sustained" in only) or (only is None and not smoke):
        bench["sustained"] = bench_sustained(
            num_requests=sustained_requests or SUSTAINED_REQUESTS
        )
    if wanted("fig7") and not smoke:
        bench["fig7_quick"] = bench_fig7_quick(jobs=jobs)
    return bench


def check_regression(current: Dict, baseline_path: str) -> List[str]:
    """Compare current fast-path decisions/sec against a committed baseline;
    returns a list of failure messages (empty = ok).  Only a >2x slowdown
    fails: absolute numbers vary across machines, an order-of-magnitude
    cliff means the O(1) path broke."""
    with open(baseline_path) as fh:
        baseline = json.load(fh)
    failures = []
    for name, entry in baseline.get("scheduler", {}).items():
        if name not in current.get("scheduler", {}):
            continue
        base_rate = entry["fast"]["decisions_per_sec"]
        cur_rate = current["scheduler"][name]["fast"]["decisions_per_sec"]
        if base_rate > 0 and cur_rate < base_rate / REGRESSION_FACTOR:
            failures.append(
                f"{name}: fast path {cur_rate:,.0f} decisions/s is more than "
                f"{REGRESSION_FACTOR}x below baseline {base_rate:,.0f}"
            )
    for name, entry in baseline.get("cluster", {}).items():
        if name not in current.get("cluster", {}):
            continue
        # Schema 5 nests per-path timings; schema <= 4 baselines put the
        # (brute-force) rate at the top level.
        base_rate = entry.get("fast", entry)["decisions_per_sec"]
        cur_entry = current["cluster"][name]
        cur_rate = cur_entry.get("fast", cur_entry)["decisions_per_sec"]
        if base_rate > 0 and cur_rate < base_rate / REGRESSION_FACTOR:
            failures.append(
                f"cluster routing {name}: {cur_rate:,.0f} decisions/s is more "
                f"than {REGRESSION_FACTOR}x below baseline {base_rate:,.0f}"
            )
        if cur_entry.get("identical_decisions") is False:
            failures.append(
                f"cluster routing {name}: indexed fast path diverged from "
                "the brute-force decision sequence"
            )
    for name, entry in baseline.get("slo", {}).items():
        if name not in current.get("slo", {}):
            continue
        base_rate = entry["forms_per_sec"]
        cur_rate = current["slo"][name]["forms_per_sec"]
        if base_rate > 0 and cur_rate < base_rate / REGRESSION_FACTOR:
            failures.append(
                f"slo kick decision {name}: {cur_rate:,.0f} forms/s is more "
                f"than {REGRESSION_FACTOR}x below baseline {base_rate:,.0f}"
            )
    base_memory = baseline.get("memory", {})
    cur_memory = current.get("memory", {})
    base_pairs = base_memory.get("model", {}).get("pairs_per_sec")
    cur_pairs = cur_memory.get("model", {}).get("pairs_per_sec")
    if base_pairs and cur_pairs and cur_pairs < base_pairs / REGRESSION_FACTOR:
        failures.append(
            f"memory accounting: {cur_pairs:,.0f} reserve/release pairs/s is "
            f"more than {REGRESSION_FACTOR}x below baseline {base_pairs:,.0f}"
        )
    for name, entry in base_memory.get("form", {}).items():
        if name not in cur_memory.get("form", {}):
            continue
        base_rate = entry["forms_per_sec"]
        cur_rate = cur_memory["form"][name]["forms_per_sec"]
        if base_rate > 0 and cur_rate < base_rate / REGRESSION_FACTOR:
            failures.append(
                f"memory kick filter {name}: {cur_rate:,.0f} forms/s is more "
                f"than {REGRESSION_FACTOR}x below baseline {base_rate:,.0f}"
            )
    base_energy = baseline.get("energy", {})
    cur_energy = current.get("energy", {})
    base_charges = base_energy.get("charge", {}).get("charges_per_sec")
    cur_charges = cur_energy.get("charge", {}).get("charges_per_sec")
    if (
        base_charges
        and cur_charges
        and cur_charges < base_charges / REGRESSION_FACTOR
    ):
        failures.append(
            f"energy accounting: {cur_charges:,.0f} charges/s is more than "
            f"{REGRESSION_FACTOR}x below baseline {base_charges:,.0f}"
        )
    for name, entry in base_energy.get("governors", {}).items():
        if name not in cur_energy.get("governors", {}):
            continue
        base_rate = entry["decisions_per_sec"]
        cur_rate = cur_energy["governors"][name]["decisions_per_sec"]
        if base_rate > 0 and cur_rate < base_rate / REGRESSION_FACTOR:
            failures.append(
                f"governor {name}: {cur_rate:,.0f} decisions/s is more than "
                f"{REGRESSION_FACTOR}x below baseline {base_rate:,.0f}"
            )
    for name, entry in baseline.get("sustained", {}).items():
        if name not in current.get("sustained", {}):
            continue
        base_rate = entry["requests_per_sec"]
        cur_rate = current["sustained"][name]["requests_per_sec"]
        if base_rate > 0 and cur_rate < base_rate / REGRESSION_FACTOR:
            failures.append(
                f"sustained {name}: {cur_rate:,.0f} requests/s is more than "
                f"{REGRESSION_FACTOR}x below baseline {base_rate:,.0f}"
            )
    base_serve = baseline.get("serve", {})
    cur_serve = current.get("serve", {})
    for section, rate_key in (
        ("submit", "submits_per_sec"),
        ("sync", "outcomes_per_sec"),
        ("http", "requests_per_sec"),
    ):
        base_rate = base_serve.get(section, {}).get(rate_key)
        cur_rate = cur_serve.get(section, {}).get(rate_key)
        if base_rate and cur_rate and cur_rate < base_rate / REGRESSION_FACTOR:
            failures.append(
                f"serve {section}: {cur_rate:,.0f} {rate_key} is more than "
                f"{REGRESSION_FACTOR}x below baseline {base_rate:,.0f}"
            )
    base_trace = baseline.get("trace", {}).get("events_per_sec")
    cur_trace = current.get("trace", {}).get("events_per_sec")
    if base_trace and cur_trace and cur_trace < base_trace / REGRESSION_FACTOR:
        failures.append(
            f"trace recording: {cur_trace:,.0f} events/s is more than "
            f"{REGRESSION_FACTOR}x below baseline {base_trace:,.0f}"
        )
    return failures


def _print_report(bench: Dict) -> None:
    print("== engine benchmark ==")
    for name, entry in bench.get("scheduler", {}).items():
        print(
            f"{name}: fast {entry['fast']['decisions_per_sec']:,.0f} dec/s, "
            f"brute {entry['brute_force']['decisions_per_sec']:,.0f} dec/s, "
            f"speedup {entry['speedup']:.1f}x"
        )
    policies = bench.get("policies", {})
    if policies:
        depth = next(iter(policies.values()))["queue_depth"]
        parts = [
            f"{name} {entry['us_per_decision']:.1f} us/dec"
            + (f" ({entry['vs_paper']:.2f}x)" if name != "paper" else "")
            for name, entry in policies.items()
            if entry["us_per_decision"] is not None
        ]
        print(f"policy bundles @depth {depth}: " + ", ".join(parts))
    slo = bench.get("slo", {})
    if slo:
        depth = next(iter(slo.values()))["queue_depth"]
        parts = [
            f"{name} {entry['us_per_form']:.1f} us/form"
            + (f" ({entry['vs_paper']:.2f}x)" if name != "paper" else "")
            for name, entry in slo.items()
            if entry["us_per_form"] is not None
        ]
        print(f"slo kick decisions @depth {depth}: " + ", ".join(parts))
    memory = bench.get("memory", {})
    if memory:
        model = memory.get("model", {})
        if model.get("us_per_pair") is not None:
            print(
                f"memory model: {model['pairs_per_sec']:,.0f} reserve/release "
                f"pairs/s ({model['us_per_pair']:.2f} us/pair)"
            )
        form = memory.get("form", {})
        if form:
            depth = next(iter(form.values()))["queue_depth"]
            parts = [
                f"{name} {entry['us_per_form']:.1f} us/form"
                + (f" ({entry['vs_paper']:.2f}x)" if name != "paper" else "")
                for name, entry in form.items()
                if entry["us_per_form"] is not None
            ]
            print(f"memory kick filter @depth {depth}: " + ", ".join(parts))
    energy = bench.get("energy", {})
    if energy:
        charge = energy.get("charge", {})
        if charge.get("us_per_charge") is not None:
            print(
                f"energy model: {charge['charges_per_sec']:,.0f} charges/s "
                f"({charge['us_per_charge']:.2f} us/charge, batch of "
                f"{charge['batch_requests']})"
            )
        governors = energy.get("governors", {})
        if governors:
            parts = [
                f"{name} {entry['us_per_decision']:.2f} us/dec"
                for name, entry in governors.items()
                if entry["us_per_decision"] is not None
            ]
            print("governor decisions: " + ", ".join(parts))
        serving = energy.get("serving", {})
        if serving.get("overhead_pct") is not None:
            print(
                f"energy serving: {serving['overhead_pct']:+.1f}% vs "
                f"energy-blind run ({serving['run_requests']} requests)"
            )
    cluster = bench.get("cluster", {})
    if cluster:
        replicas = next(iter(cluster.values()))["num_replicas"]
        for name, entry in cluster.items():
            identical = "identical" if entry["identical_decisions"] else "DIVERGED"
            print(
                f"cluster {name} @{replicas} replicas: "
                f"fast {entry['fast']['us_per_decision']:.2f} us/dec, "
                f"brute {entry['brute_force']['us_per_decision']:.2f} us/dec, "
                f"speedup {entry['speedup']:.1f}x, decisions {identical}"
            )
    sustained = bench.get("sustained", {})
    if sustained:
        for name, entry in sustained.items():
            print(
                f"sustained {name} @{entry['num_replicas']} replicas: "
                f"{entry['requests_per_sec']:,.0f} req/s over "
                f"{entry['requests']:,} requests, decision p50 "
                f"{entry['decision_p50_us']:.2f} us / p99 "
                f"{entry['decision_p99_us']:.2f} us"
            )
    trace = bench.get("trace")
    if trace:
        print(
            f"trace: {trace['events_per_sec']:,.0f} events/s recorded "
            f"({trace['us_per_event']:.2f} us/event), traced run "
            f"{trace['slowdown_pct']:+.1f}% vs untraced"
        )
    serve = bench.get("serve", {})
    if serve:
        submit, sync, http = serve["submit"], serve["sync"], serve["http"]
        print(
            f"serve: submit {submit['us_per_submit']:.1f} us/req, sync "
            f"{sync['us_per_outcome']:.1f} us/outcome, http "
            f"{http['requests_per_sec']:,.0f} req/s end-to-end "
            f"(p50 {http['p50_ms']:.2f} ms, p99 {http['p99_ms']:.2f} ms)"
        )
    fig7 = bench.get("fig7_quick")
    if fig7:
        par = (
            f"{fig7['parallel_seconds']:.1f}s with --jobs {fig7['jobs']}"
            if fig7["parallel_seconds"] is not None
            else "n/a (no fork)"
        )
        print(
            f"fig7 quick sweep: serial {fig7['serial_seconds']:.1f}s, "
            f"parallel {par}, identical summaries: "
            f"{fig7['identical_summaries']} ({fig7['cpu_count']} cpu)"
        )


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Benchmark the scheduling engine and experiment runner."
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI mode: fewer depths/decisions, skip the fig7 sweep",
    )
    parser.add_argument(
        "--jobs", type=int, default=2, help="pool size for the parallel fig7 timing"
    )
    parser.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="write results JSON here (default: BENCH_engine.json in cwd; "
        "pass --no-write via --out '' to skip)",
    )
    parser.add_argument(
        "--check",
        default=None,
        metavar="BASELINE",
        help="compare against a committed BENCH_engine.json; exit 1 on a "
        f">{REGRESSION_FACTOR}x decisions/sec regression",
    )
    parser.add_argument(
        "--only",
        default=None,
        metavar="SECTIONS",
        help="comma-separated subset of sections to run "
        f"(from: {', '.join(BENCH_SECTIONS)})",
    )
    parser.add_argument(
        "--sustained-requests",
        type=int,
        default=None,
        metavar="N",
        help="request count for the sustained sweep (default: 1,000,000)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="run under cProfile and print the top-20 cumulative entries",
    )
    args = parser.parse_args(argv)

    only: Optional[List[str]] = None
    if args.only:
        only = [section.strip() for section in args.only.split(",") if section.strip()]
        unknown = [s for s in only if s not in BENCH_SECTIONS]
        if unknown:
            print(
                f"error: unknown section(s) {', '.join(unknown)} "
                f"(have: {', '.join(BENCH_SECTIONS)})",
                file=sys.stderr,
            )
            return 2

    def run() -> Dict:
        return run_engine_bench(
            smoke=args.smoke,
            jobs=args.jobs,
            only=only,
            sustained_requests=args.sustained_requests,
        )

    if args.profile:
        import cProfile
        import pstats

        profiler = cProfile.Profile()
        bench = profiler.runcall(run)
        pstats.Stats(profiler).sort_stats("cumulative").print_stats(20)
    else:
        bench = run()
    _print_report(bench)

    failures: List[str] = []
    if args.check:
        try:
            failures = check_regression(bench, args.check)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"error: cannot read baseline {args.check}: {exc}", file=sys.stderr)
            return 2
        for failure in failures:
            print(f"REGRESSION: {failure}", file=sys.stderr)
        if not failures:
            print(f"[no regression vs {args.check}]")

    out = args.out
    if out is None:
        # A partial run must not clobber a committed full baseline.
        out = "" if only is not None else "BENCH_engine.json"
    if out:
        with open(out, "w") as fh:
            json.dump(bench, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"[wrote {out}]")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())

"""Device memory model: capacity, weight residency, per-request state.

The paper keeps each request's hidden state resident on the GPU between
cells; this module gives that state a *size*.  A :class:`MemoryModel`
hangs off a :class:`~repro.gpu.device.GPUDevice` (``device.memory``,
``None`` by default so the time-only model is untouched) and accounts
three pools against a byte capacity:

* **weights** — per-cell-type parameter residency, loaded once at server
  construction and held for the device's lifetime;
* **state** — per-request hidden/cell vectors, one reservation per live
  subgraph resident on the device (dynamic decode grows one subgraph per
  decode step, so the footprint grows with the output length);
* **free** — what a kick may still claim.

``reserve`` *refuses* (returns ``False``) rather than overcommits, so
``reserved <= capacity`` holds by construction; callers decide whether a
refusal means deferring, evicting a victim, or cancelling with an OOM.
Releases are strict — freeing bytes that were never reserved raises —
which is what lets the chaos suites assert that accounting telescopes to
zero on every request's terminal state.

:class:`MemorySpec` is the declarative, JSON-round-trippable description
(`capacity`, per-subgraph `state_bytes`, per-cell-type `weights`, and the
front-door `admission_free_bytes` shed threshold) carried on
``ServerSpec``/``ClusterSpec``.
"""

from __future__ import annotations

from typing import Dict, Optional

#: Hidden + cell vector at h=1024 fp32 — the natural per-subgraph state
#: footprint (mirrors ``PlacementPolicy.HIDDEN_STATE_BYTES``).
DEFAULT_STATE_BYTES = 2 * 1024 * 4


class MemorySpec:
    """Declarative memory budget for a server (or a whole cluster).

    Plain data, JSON round-trippable, hashable by value — the same
    contract as ``SLAConfig``.  ``capacity`` is bytes per device;
    ``state_bytes`` is the footprint of one resident subgraph's hidden
    state; ``weights`` maps cell-type name -> resident parameter bytes
    (deducted up front on every device); ``admission_free_bytes``, when
    set, sheds arrivals at the front door while every candidate device
    has less free memory than the threshold.
    """

    def __init__(
        self,
        capacity: int,
        state_bytes: int = DEFAULT_STATE_BYTES,
        weights: Optional[Dict[str, int]] = None,
        admission_free_bytes: Optional[int] = None,
    ):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if state_bytes <= 0:
            raise ValueError("state_bytes must be positive")
        self.capacity = int(capacity)
        self.state_bytes = int(state_bytes)
        self.weights = dict(weights) if weights else {}
        for cell, nbytes in self.weights.items():
            if nbytes < 0:
                raise ValueError(f"negative weight bytes for {cell!r}")
        self.admission_free_bytes = (
            None if admission_free_bytes is None else int(admission_free_bytes)
        )

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> dict:
        out: dict = {"capacity": self.capacity, "state_bytes": self.state_bytes}
        if self.weights:
            out["weights"] = dict(self.weights)
        if self.admission_free_bytes is not None:
            out["admission_free_bytes"] = self.admission_free_bytes
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "MemorySpec":
        return cls(
            capacity=data["capacity"],
            state_bytes=data.get("state_bytes", DEFAULT_STATE_BYTES),
            weights=data.get("weights"),
            admission_free_bytes=data.get("admission_free_bytes"),
        )

    def replace(self, **changes) -> "MemorySpec":
        data = self.to_dict()
        data.update({k: v for k, v in changes.items() if v is not None})
        for key, value in changes.items():
            if value is None:
                data.pop(key, None)
        return MemorySpec.from_dict(data)

    def __eq__(self, other) -> bool:
        return isinstance(other, MemorySpec) and self.to_dict() == other.to_dict()

    def __repr__(self) -> str:
        return (
            f"MemorySpec(capacity={self.capacity}, "
            f"state_bytes={self.state_bytes}, weights={self.weights!r}, "
            f"admission_free_bytes={self.admission_free_bytes!r})"
        )


class MemoryModel:
    """Byte accounting for one device: weights + per-request state.

    ``reserve`` never overcommits — it returns ``False`` when the claim
    would push ``reserved`` past ``capacity`` and the caller chooses the
    pressure response.  ``release`` is strict (underflow raises) so a
    leaked or double-freed reservation is caught at the fault site, not
    at drain.
    """

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = int(capacity)
        self.weight_bytes = 0
        self.weights: Dict[str, int] = {}
        self.state_reserved = 0
        self.peak_reserved = 0
        self._per_request: Dict[int, int] = {}

    @classmethod
    def from_spec(cls, spec: MemorySpec) -> "MemoryModel":
        model = cls(spec.capacity)
        for cell, nbytes in spec.weights.items():
            model.load_weights(cell, nbytes)
        return model

    # -- weights -----------------------------------------------------------

    def load_weights(self, cell_type: str, nbytes: int) -> None:
        """Make ``cell_type``'s parameters resident for the device's
        lifetime.  A budget too small for the weights is a config error,
        not back-pressure, so overflow raises."""
        if nbytes < 0:
            raise ValueError("weight bytes must be non-negative")
        prev = self.weights.get(cell_type, 0)
        new_total = self.weight_bytes - prev + nbytes
        if new_total + self.state_reserved > self.capacity:
            raise ValueError(
                f"weights for {cell_type!r} ({nbytes} B) do not fit: "
                f"{new_total + self.state_reserved} > capacity {self.capacity}"
            )
        self.weights[cell_type] = nbytes
        self.weight_bytes = new_total
        self.peak_reserved = max(self.peak_reserved, self.reserved)

    # -- per-request state -------------------------------------------------

    def reserve(self, request_id: int, nbytes: int) -> bool:
        """Claim ``nbytes`` of state for ``request_id``; refuses (returns
        ``False``, no partial effect) when the claim would overcommit."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if self.reserved + nbytes > self.capacity:
            return False
        self.state_reserved += nbytes
        self._per_request[request_id] = self._per_request.get(request_id, 0) + nbytes
        self.peak_reserved = max(self.peak_reserved, self.reserved)
        return True

    def release(self, request_id: int, nbytes: int) -> None:
        """Return ``nbytes`` of ``request_id``'s state; strict."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        held = self._per_request.get(request_id, 0)
        if nbytes > held:
            raise ValueError(
                f"release underflow for request {request_id}: "
                f"{nbytes} > {held} reserved"
            )
        if nbytes == held:
            self._per_request.pop(request_id, None)
        else:
            self._per_request[request_id] = held - nbytes
        self.state_reserved -= nbytes

    def release_request(self, request_id: int) -> int:
        """Free everything ``request_id`` holds (terminal states, eviction);
        returns the bytes freed.  A request with no reservation frees 0."""
        held = self._per_request.pop(request_id, 0)
        self.state_reserved -= held
        return held

    def holds(self, request_id: int) -> int:
        return self._per_request.get(request_id, 0)

    def reset(self) -> None:
        """Device death: all resident state is gone (weights included —
        the device can never serve again)."""
        self.state_reserved = 0
        self._per_request.clear()
        self.weight_bytes = 0
        self.weights.clear()

    # -- introspection -----------------------------------------------------

    @property
    def reserved(self) -> int:
        return self.weight_bytes + self.state_reserved

    def free(self) -> int:
        return self.capacity - self.reserved

    def live_requests(self) -> int:
        return len(self._per_request)

    def __repr__(self) -> str:
        return (
            f"<MemoryModel {self.reserved}/{self.capacity} B reserved "
            f"({self.weight_bytes} weights, {self.state_reserved} state, "
            f"{len(self._per_request)} requests)>"
        )

"""Batch-size -> execution-time cost model, calibrated to the paper.

Figure 3 of the paper measures one LSTM step (hidden size 1024) across batch
sizes on a V100 and a Xeon E5-2698v4.  The text pins several points exactly:

* batch 64 takes about **185 us** on the GPU (§7.3);
* batch 512 takes about **784 us** (§7.3), the throughput-optimal point;
* execution time "approximately doubles as b doubles" past 512 (§2.2);
* below roughly batch 16 the time is flat (kernel-bound).

A :class:`LatencyTable` stores anchor points and interpolates between them
in log-log space (power-law segments), extrapolating linearly past the last
anchor — exactly the flat -> sublinear -> linear shape the paper describes.
All times are **seconds**.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Optional, Tuple

_US = 1e-6  # anchors below are written in microseconds


class LatencyTable:
    """Piecewise power-law interpolation over (batch, seconds) anchors."""

    def __init__(self, anchors_us: Dict[int, float], name: str = "table"):
        if not anchors_us:
            raise ValueError("anchors must be non-empty")
        points = sorted(anchors_us.items())
        for batch, t in points:
            if batch < 1:
                raise ValueError(f"anchor batch sizes must be >= 1, got {batch}")
            if t <= 0:
                raise ValueError(f"anchor times must be positive, got {t}")
        self.name = name
        self._batches = [b for b, _ in points]
        self._times = [t * _US for _, t in points]

    def __call__(self, batch_size: int) -> float:
        """Execution time in seconds for one step at ``batch_size``."""
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        batches, times = self._batches, self._times
        if batch_size <= batches[0]:
            return times[0]
        if batch_size >= batches[-1]:
            # Linear (throughput-saturated) regime past the last anchor.
            return times[-1] * (batch_size / batches[-1])
        # Find the surrounding anchors and interpolate in log-log space.
        lo = 0
        for i in range(len(batches) - 1):
            if batches[i] <= batch_size <= batches[i + 1]:
                lo = i
                break
        b0, b1 = batches[lo], batches[lo + 1]
        t0, t1 = times[lo], times[lo + 1]
        frac = (math.log(batch_size) - math.log(b0)) / (math.log(b1) - math.log(b0))
        return math.exp(math.log(t0) + frac * (math.log(t1) - math.log(t0)))

    def throughput(self, batch_size: int) -> float:
        """Steady-state items/second when running back-to-back at this batch."""
        return batch_size / self(batch_size)

    def best_batch(self, candidates: Optional[Iterable[int]] = None) -> int:
        """Smallest batch size within 0.1% of the maximum throughput among
        ``candidates`` (default: the table's own anchors) — how the paper
        picks bmax offline: past saturation larger batches only add latency
        ("any batch size b > 512 has similar throughput but higher latency")."""
        pool = sorted(candidates) if candidates is not None else list(self._batches)
        best = max(self.throughput(b) for b in pool)
        for b in pool:
            if self.throughput(b) >= 0.999 * best:
                return b
        raise AssertionError("unreachable")  # pragma: no cover

    def scale(self, factor: float, name: Optional[str] = None) -> "LatencyTable":
        """A table with every anchor time multiplied by ``factor``.

        Derived tables default to the structured name ``{base}@x{factor}``
        (e.g. ``v100-lstm-step-h1024@x1.25`` for a DVFS state at 0.8x
        clock), so frequency-scaled tables stay distinguishable in Chrome
        traces and bench output.
        """
        if factor <= 0:
            raise ValueError("scale factor must be positive")
        anchors = {
            b: (t / _US) * factor for b, t in zip(self._batches, self._times)
        }
        return LatencyTable(anchors, name or f"{self.name}@x{factor:g}")

    def anchors(self) -> Tuple[Tuple[int, float], ...]:
        """The (batch, seconds) anchor points, for inspection and tests."""
        return tuple(zip(self._batches, self._times))


def v100_lstm_step_table() -> LatencyTable:
    """One LSTM step, h=1024, on the simulated V100 (paper Fig 3, bottom)."""
    return LatencyTable(
        {
            1: 55.0,
            2: 55.0,
            4: 56.0,
            8: 60.0,
            16: 72.0,
            32: 112.0,
            64: 185.0,   # pinned by §7.3
            128: 290.0,
            256: 470.0,
            512: 784.0,  # pinned by §7.3; throughput-optimal
            1024: 1568.0,
            2048: 3136.0,
            4096: 6272.0,
        },
        name="v100-lstm-step-h1024",
    )


def cpu_lstm_step_table() -> LatencyTable:
    """One LSTM step, h=1024, on the simulated Xeon (paper Fig 3, top)."""
    return LatencyTable(
        {
            1: 300.0,
            2: 350.0,
            4: 400.0,
            8: 520.0,
            16: 700.0,
            32: 1000.0,
            64: 1600.0,
            128: 2800.0,
            256: 5000.0,
            512: 9000.0,
            1024: 17500.0,
            2048: 34500.0,
            4096: 68000.0,
        },
        name="cpu-lstm-step-h1024",
    )


def seq2seq_decoder_step_table() -> LatencyTable:
    """One Seq2Seq decoder step (LSTM + 30k-vocab projection + argmax).

    The paper reports the decode phase is ~75% of total Seq2Seq compute at
    equal step counts (so ~3x an encoder step) and that decoder throughput
    peaks at batch 256 rather than 512 — the projection matmul saturates the
    device earlier.  Anchors below reproduce both facts.
    """
    return LatencyTable(
        {
            1: 200.0,
            2: 200.0,
            4: 205.0,
            8: 215.0,
            16: 235.0,
            32: 290.0,
            64: 430.0,
            128: 760.0,
            256: 1400.0,   # throughput-optimal: 256/1.4ms == 512/2.8ms
            512: 2800.0,
            1024: 5600.0,
        },
        name="v100-seq2seq-decoder-step",
    )


def tree_leaf_step_table() -> LatencyTable:
    """TreeLSTM leaf cell (embedding lookup + input/output gating).

    Calibrated jointly with :func:`tree_internal_step_table` so that the
    fixed-16-leaf-tree "ideal" executor peaks at ~7K req/s and BatchMaker on
    TreeBank-like trees peaks at ~3K req/s, the magnitudes of the paper's
    Figures 14 and 15.
    """
    return v100_lstm_step_table().scale(1.0, name="v100-tree-leaf-step")


def tree_internal_step_table() -> LatencyTable:
    """TreeLSTM internal cell: a (b,2h)x(2h,5h) gate matmul plus per-child
    forget gating — measurably heavier than a chain LSTM step (see
    :func:`tree_leaf_step_table` for the calibration targets)."""
    return v100_lstm_step_table().scale(2.3, name="v100-tree-internal-step")


# Named table factories, addressable from declarative specs (heterogeneous
# device classes in ClusterSpec reference these by name to re-calibrate a
# replica's cells, e.g. {"tables": {"lstm": "cpu_lstm_step"}}).
NAMED_TABLES = {
    "v100_lstm_step": v100_lstm_step_table,
    "cpu_lstm_step": cpu_lstm_step_table,
    "seq2seq_decoder_step": seq2seq_decoder_step_table,
    "tree_leaf_step": tree_leaf_step_table,
    "tree_internal_step": tree_internal_step_table,
}


def make_table(name: str) -> LatencyTable:
    """Build a latency table registered in :data:`NAMED_TABLES`."""
    try:
        factory = NAMED_TABLES[name]
    except KeyError:
        raise ValueError(
            f"unknown latency table {name!r}; expected one of "
            f"{sorted(NAMED_TABLES)}"
        ) from None
    return factory()


class CostModel:
    """Maps cell-type names to latency tables, plus serving overheads.

    The paper measures ~250 us per executed LSTM step at batch 64 against
    the 185 us raw kernel time, i.e. ~65 us of "scheduling and gathering
    overhead" (§7.3).  That overhead splits into:

    * ``per_task_overhead`` — scheduling/dispatch, paid by every task;
    * ``gather_overhead`` — the contiguous-memory input copy, paid only
      when a task's batch composition differs from the previous task on the
      same device (§4.3: "if the batch of requests changes between two
      successive cell execution, one must do memory copy, called gather").
      Pinning exists precisely to make compositions repeat.

    ``launch_gap`` models the residual per-kernel launch gap that remains
    even with asynchronous issue (§5); it multiplies the cell's operator
    count.
    """

    DEFAULT_PER_TASK_OVERHEAD = 35e-6
    DEFAULT_GATHER_OVERHEAD = 30e-6
    DEFAULT_LAUNCH_GAP = 0.0  # async issue hides launch gaps by default

    def __init__(
        self,
        tables: Optional[Dict[str, LatencyTable]] = None,
        per_task_overhead: float = DEFAULT_PER_TASK_OVERHEAD,
        gather_overhead: float = DEFAULT_GATHER_OVERHEAD,
        launch_gap: float = DEFAULT_LAUNCH_GAP,
    ):
        self._tables: Dict[str, LatencyTable] = dict(tables or {})
        if per_task_overhead < 0 or gather_overhead < 0 or launch_gap < 0:
            raise ValueError("overheads must be non-negative")
        self.per_task_overhead = per_task_overhead
        self.gather_overhead = gather_overhead
        self.launch_gap = launch_gap

    def register(self, cell_name: str, table: LatencyTable) -> None:
        self._tables[cell_name] = table

    def tables(self) -> Dict[str, LatencyTable]:
        """The registered ``{cell name: table}`` map (a copy)."""
        return dict(self._tables)

    def scaled(self, factor: float) -> "CostModel":
        """A model with every table's times multiplied by ``factor``.

        Used for DVFS states (relative frequency ``f`` scales kernel time
        by ``1/f``) and for heterogeneous device classes declared as a
        uniform slowdown of the calibrated model.  Scaled tables carry the
        structured ``{base}@x{factor}`` names from :meth:`LatencyTable.scale`;
        overheads are unscaled (dispatch cost is host-side, not clocked by
        the accelerator).
        """
        return CostModel(
            {cell: table.scale(factor) for cell, table in self._tables.items()},
            per_task_overhead=self.per_task_overhead,
            gather_overhead=self.gather_overhead,
            launch_gap=self.launch_gap,
        )

    def table_for(self, cell_name: str) -> LatencyTable:
        if cell_name not in self._tables:
            raise KeyError(
                f"no latency table registered for cell {cell_name!r}; "
                f"known: {sorted(self._tables)}"
            )
        return self._tables[cell_name]

    def kernel_time(self, cell_name: str, batch_size: int) -> float:
        """Raw batched-kernel time for one step of ``cell_name``."""
        return self.table_for(cell_name)(batch_size)

    def task_time(
        self,
        cell_name: str,
        batch_size: int,
        num_operators: int = 1,
        include_gather: bool = True,
    ) -> float:
        """Full task cost: kernel + scheduling (+ gather) + launch gaps."""
        return (
            self.kernel_time(cell_name, batch_size)
            + self.per_task_overhead
            + (self.gather_overhead if include_gather else 0.0)
            + self.launch_gap * max(num_operators, 1)
        )

"""Discrete-event model of a GPU device.

The device owns one FIFO stream (matching the paper's use of a single
stream per worker with kernels issued in topological order).  Submitting a
kernel sequence reserves device time starting at ``max(now, free_at)``;
:class:`~repro.gpu.kernel.SignalKernel` callbacks fire at their retire time
through the event loop.  Cross-device copies are modelled as
latency + size/bandwidth, which the scheduler's pinning exists to avoid.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple

from repro.gpu.kernel import Kernel, SignalKernel
from repro.sim.events import Event, EventLoop


class DeviceLostError(RuntimeError):
    """Work was submitted to (or running on) a device that has died."""


def make_devices(loop: EventLoop, num_gpus: int) -> List["GPUDevice"]:
    """The per-server GPU fleet, ids 0..num_gpus-1; every server kind
    (BatchMaker's manager and the graph-batching baselines) builds it the
    same way."""
    if num_gpus < 1:
        raise ValueError("need at least one GPU")
    return [GPUDevice(loop, device_id=i) for i in range(num_gpus)]


class DeviceTimeline:
    """Record of (start, end, tag) intervals for utilization accounting."""

    def __init__(self):
        self.intervals: List[Tuple[float, float, Any]] = []

    def record(self, start: float, end: float, tag: Any) -> None:
        self.intervals.append((start, end, tag))

    def truncate(self, at: float) -> None:
        """Forget device time after ``at`` (the device died then): intervals
        past the cut are dropped, straddling ones are clipped."""
        clipped: List[Tuple[float, float, Any]] = []
        for start, end, tag in self.intervals:
            if start >= at:
                continue
            clipped.append((start, min(end, at), tag))
        self.intervals = clipped

    def busy_time(self, since: float = 0.0, until: Optional[float] = None) -> float:
        """Total busy seconds within the window [since, until]."""
        total = 0.0
        for start, end, _ in self.intervals:
            lo = max(start, since)
            hi = end if until is None else min(end, until)
            if hi > lo:
                total += hi - lo
        return total

    def utilization(self, since: float, until: float) -> float:
        """Fraction of [since, until] the device was busy."""
        if until <= since:
            raise ValueError("empty utilization window")
        return self.busy_time(since, until) / (until - since)


class GPUDevice:
    """A simulated GPU with a single FIFO execution stream.

    NVLink-class interconnect defaults: 10 us copy latency, 20 GB/s
    effective per-direction bandwidth.
    """

    def __init__(
        self,
        loop: EventLoop,
        device_id: int,
        name: Optional[str] = None,
        copy_latency: float = 10e-6,
        copy_bandwidth: float = 20e9,
    ):
        self.loop = loop
        self.device_id = device_id
        self.name = name if name is not None else f"gpu{device_id}"
        self.copy_latency = copy_latency
        self.copy_bandwidth = copy_bandwidth
        self.timeline = DeviceTimeline()
        self._free_at = 0.0
        self._kernels_launched = 0
        self.alive = True
        # Byte accounting (repro.gpu.memory.MemoryModel); None keeps the
        # historical time-only device model.
        self.memory = None
        # Joule accounting (repro.gpu.energy.EnergyModel); None keeps the
        # energy-blind device model.
        self.energy = None
        # Signal events scheduled for not-yet-retired kernels; cancelled en
        # masse when the device dies (fired events are pruned lazily).
        self._pending_signals: List[Event] = []

    # -- execution ---------------------------------------------------------

    def submit(self, kernels: Sequence[Kernel], tag: Any = None) -> float:
        """Enqueue ``kernels`` on the stream; returns the retire time.

        Kernels run back-to-back in FIFO order after everything already in
        the stream.  SignalKernel callbacks are delivered at their retire
        time via the event loop (never earlier than ``now``).
        """
        if not kernels:
            raise ValueError("cannot submit an empty kernel sequence")
        if not self.alive:
            raise DeviceLostError(f"device {self.name} is dead")
        if len(self._pending_signals) > 64:
            self._pending_signals = [
                e for e in self._pending_signals if not (e.fired or e.cancelled)
            ]
        start = max(self.loop.now(), self._free_at)
        t = start
        for kernel in kernels:
            t += kernel.duration
            self._kernels_launched += 1
            if isinstance(kernel, SignalKernel):
                self._pending_signals.append(
                    self.loop.call_at(t, kernel.callback)
                )
        if t > start:
            self.timeline.record(start, t, tag)
        self._free_at = t
        return t

    def fail(self) -> int:
        """Kill the device: every not-yet-delivered signal is cancelled (the
        kernels never retire), queued work is discarded, and utilisation
        accounting is clipped at the death time.  Returns the number of
        signals that were cancelled.  Idempotent."""
        if not self.alive:
            return 0
        self.alive = False
        now = self.loop.now()
        cancelled = sum(1 for event in self._pending_signals if event.cancel())
        self._pending_signals.clear()
        self.timeline.truncate(now)
        self._free_at = now
        if self.memory is not None:
            self.memory.reset()
        if self.energy is not None:
            self.energy.reset(now)
        return cancelled

    def run_for(self, duration: float, on_complete=None, tag: Any = None) -> float:
        """Convenience: one compute kernel plus a signal kernel."""
        kernels: List[Kernel] = [Kernel(duration, tag)]
        if on_complete is not None:
            kernels.append(SignalKernel(on_complete, tag))
        return self.submit(kernels, tag)

    # -- transfers ---------------------------------------------------------

    def copy_cost(self, nbytes: int) -> float:
        """Seconds to move ``nbytes`` to/from a peer device."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if nbytes == 0:
            return 0.0
        return self.copy_latency + nbytes / self.copy_bandwidth

    # -- introspection -----------------------------------------------------

    @property
    def free_at(self) -> float:
        """Earliest time newly submitted work could start."""
        return max(self._free_at, self.loop.now())

    def is_idle(self) -> bool:
        return self._free_at <= self.loop.now()

    def backlog(self) -> float:
        """Seconds of queued work not yet retired."""
        return max(0.0, self._free_at - self.loop.now())

    @property
    def kernels_launched(self) -> int:
        return self._kernels_launched

    def __repr__(self) -> str:
        return f"<GPUDevice {self.name} free_at={self._free_at:.6f}>"

"""Per-device energy accounting and DVFS governors.

The paper's cellular batching keeps GPUs busy with fused batches but never
asks what that costs in joules.  E-BATCH (PAPERS.md) shows the batching
policy directly trades energy per inference against latency via batch size
and core frequency.  This module adds the bookkeeping half of that trade:

``EnergySpec``
    A JSON-round-trippable value object (peer to ``gpu.memory.MemorySpec``)
    describing a device's power envelope: idle/static watts, active watts at
    nominal frequency, the discrete DVFS frequency states available, the
    superlinear dynamic-power exponent, and which governor runs the knob.

``EnergyModel``
    Strict per-device accounting attached to ``GPUDevice.energy`` (peer to
    ``GPUDevice.memory``).  Active energy is charged per batched kernel at
    submission — duration x dynamic watts at the frequency then in effect —
    and attributed evenly across the task's distinct member requests.  Idle
    energy is integrated against the device timeline at read time.  The
    invariant (asserted in chaos tests): attributed + unattributed active
    joules telescope to the active total within 1e-9, and integrated energy
    is exactly active + idle.

Governors (``GOVERNORS``)
    Pluggable per-worker frequency policies.  Decisions happen only at
    batch boundaries (``Manager._submit_task``) so the engine stays
    deterministic and the fast path stays bit-identical when energy is off.
    ``fixed`` pins one state; ``race_to_idle`` runs a time-weighted
    utilization EWMA and races at max frequency under load, dropping to
    the lowest state when the device goes quiet; ``headroom`` picks the
    slowest state that keeps the busy fraction under a target — the
    energy-optimal stable policy under superlinear dynamic power.

Physics convention: frequencies are relative to the calibrated table
(1.0 = the table's native clock).  Kernel time scales as 1/f (the manager
swaps in ``LatencyTable.scale(1/f)`` tables, named ``{base}@x{factor}``)
and dynamic power as f**power_exponent (default cubic, the classical CMOS
``C V^2 f`` with voltage tracking frequency).  Net: energy per kernel goes
as f**(power_exponent - 1) — lower states trade latency for joules, which
is what makes the energy-vs-p99 Pareto frontier in ``fig_energy`` nontrivial.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence, Tuple

DEFAULT_IDLE_WATTS = 50.0
DEFAULT_ACTIVE_WATTS = 250.0
DEFAULT_POWER_EXPONENT = 3.0


class EnergySpec:
    """Declarative power envelope for a device class.

    Parameters
    ----------
    idle_watts:
        Static draw while the device exists, busy or not (>= 0).
    active_watts:
        Dynamic draw while a kernel runs at relative frequency 1.0 (> 0).
    frequencies:
        Discrete DVFS states, relative to the calibrated latency table
        (1.0 = native clock).  Sorted ascending, deduplicated; every state
        must be positive.
    governor:
        Name in ``GOVERNORS`` ("fixed", "race_to_idle" or "headroom").
    governor_params:
        Keyword arguments forwarded to the governor constructor.
    power_exponent:
        Dynamic power scales as ``f ** power_exponent`` (>= 1).
    """

    def __init__(
        self,
        idle_watts: float = DEFAULT_IDLE_WATTS,
        active_watts: float = DEFAULT_ACTIVE_WATTS,
        frequencies: Sequence[float] = (1.0,),
        governor: str = "fixed",
        governor_params: Optional[Dict] = None,
        power_exponent: float = DEFAULT_POWER_EXPONENT,
    ):
        if idle_watts < 0:
            raise ValueError(f"idle_watts must be >= 0, got {idle_watts}")
        if active_watts <= 0:
            raise ValueError(f"active_watts must be > 0, got {active_watts}")
        freqs = tuple(sorted(set(float(f) for f in frequencies)))
        if not freqs:
            raise ValueError("frequencies must be non-empty")
        if freqs[0] <= 0:
            raise ValueError(f"frequencies must be positive, got {freqs[0]}")
        if governor not in GOVERNORS:
            raise ValueError(
                f"unknown governor {governor!r}; expected one of "
                f"{sorted(GOVERNORS)}"
            )
        if power_exponent < 1:
            raise ValueError(
                f"power_exponent must be >= 1, got {power_exponent}"
            )
        self.idle_watts = float(idle_watts)
        self.active_watts = float(active_watts)
        self.frequencies: Tuple[float, ...] = freqs
        self.governor = governor
        self.governor_params = dict(governor_params or {})
        self.power_exponent = float(power_exponent)
        # Fail fast on bad governor params (e.g. a fixed frequency outside
        # the state set) instead of at first batch boundary.
        make_governor(governor, freqs, **self.governor_params)

    def to_dict(self) -> Dict:
        data: Dict = {
            "idle_watts": self.idle_watts,
            "active_watts": self.active_watts,
            "frequencies": list(self.frequencies),
            "governor": self.governor,
            "power_exponent": self.power_exponent,
        }
        if self.governor_params:
            data["governor_params"] = dict(self.governor_params)
        return data

    @classmethod
    def from_dict(cls, data: Dict) -> "EnergySpec":
        return cls(
            idle_watts=data.get("idle_watts", DEFAULT_IDLE_WATTS),
            active_watts=data.get("active_watts", DEFAULT_ACTIVE_WATTS),
            frequencies=data.get("frequencies", (1.0,)),
            governor=data.get("governor", "fixed"),
            governor_params=data.get("governor_params"),
            power_exponent=data.get("power_exponent", DEFAULT_POWER_EXPONENT),
        )

    def replace(self, **changes) -> "EnergySpec":
        data = self.to_dict()
        for key, value in changes.items():
            if value is None:
                data.pop(key, None)
            else:
                data[key] = value
        return EnergySpec.from_dict(data)

    def __eq__(self, other) -> bool:
        return isinstance(other, EnergySpec) and self.to_dict() == other.to_dict()

    def __repr__(self) -> str:
        return (
            f"EnergySpec(idle_watts={self.idle_watts:g}, "
            f"active_watts={self.active_watts:g}, "
            f"frequencies={list(self.frequencies)}, "
            f"governor={self.governor!r})"
        )


class EnergyModel:
    """Joule accounting for one device.

    Active energy is charged per task via :meth:`charge_task`; idle energy
    is derived at read time from the wall-clock span minus the device's
    busy time (the caller supplies busy time from the device timeline so
    this class stays clock-free).  ``reset(now)`` zeroes the books when a
    device dies — a replacement device starts a fresh integration window,
    exactly like ``MemoryModel.reset()``.
    """

    def __init__(
        self,
        idle_watts: float = DEFAULT_IDLE_WATTS,
        active_watts: float = DEFAULT_ACTIVE_WATTS,
        power_exponent: float = DEFAULT_POWER_EXPONENT,
        frequency: float = 1.0,
        start_time: float = 0.0,
    ):
        if frequency <= 0:
            raise ValueError(f"frequency must be positive, got {frequency}")
        self.idle_watts = float(idle_watts)
        self.active_watts = float(active_watts)
        self.power_exponent = float(power_exponent)
        self.frequency = float(frequency)
        self.start_time = float(start_time)
        self.active_joules = 0.0
        self.unattributed_joules = 0.0
        self.tasks_charged = 0
        self.frequency_changes = 0
        self._per_request: Dict[int, float] = {}
        self._attributed = 0.0

    @classmethod
    def from_spec(cls, spec: EnergySpec, start_time: float = 0.0) -> "EnergyModel":
        return cls(
            idle_watts=spec.idle_watts,
            active_watts=spec.active_watts,
            power_exponent=spec.power_exponent,
            frequency=spec.frequencies[-1],
            start_time=start_time,
        )

    @property
    def dynamic_watts(self) -> float:
        """Active power draw at the current frequency."""
        return self.active_watts * self.frequency**self.power_exponent

    def set_frequency(self, frequency: float) -> None:
        if frequency <= 0:
            raise ValueError(f"frequency must be positive, got {frequency}")
        if frequency != self.frequency:
            self.frequency = float(frequency)
            self.frequency_changes += 1

    def charge_task(self, duration: float, request_ids: Iterable[int]) -> float:
        """Charge one batched kernel, splitting joules across its requests.

        ``duration`` is the task's final wall duration (stragglers and
        gather/migration overheads included — they burn power too).
        Returns the joules charged.
        """
        if duration < 0:
            raise ValueError(f"duration must be >= 0, got {duration}")
        joules = duration * self.dynamic_watts
        self.active_joules += joules
        self.tasks_charged += 1
        ids = list(request_ids)
        if ids:
            share = joules / len(ids)
            per_request = self._per_request
            for request_id in ids:
                per_request[request_id] = per_request.get(request_id, 0.0) + share
            self._attributed += joules
        else:
            self.unattributed_joules += joules
        return joules

    def request_joules(self, request_id: int) -> float:
        return self._per_request.get(request_id, 0.0)

    def per_request_joules(self) -> Dict[int, float]:
        return dict(self._per_request)

    def attributed_joules(self) -> float:
        """Running total of joules attributed to specific requests."""
        return self._attributed

    def idle_joules(self, now: float, busy_time: float) -> float:
        """Static energy: idle watts over the non-busy span since start."""
        span = max(0.0, now - self.start_time)
        return self.idle_watts * max(0.0, span - busy_time)

    def integrated_joules(self, now: float, busy_time: float) -> float:
        """Total device energy: active charges plus integrated idle power."""
        return self.active_joules + self.idle_joules(now, busy_time)

    def reset(self, now: float) -> None:
        """Forget everything; the next integration window starts at ``now``.

        Called when the device dies: a replacement board starts cold, and
        the old board's books stop (energy already spent on doomed work is
        intentionally dropped, mirroring ``MemoryModel.reset()``).
        """
        self.start_time = float(now)
        self.active_joules = 0.0
        self.unattributed_joules = 0.0
        self.tasks_charged = 0
        self._per_request.clear()
        self._attributed = 0.0


class FixedGovernor:
    """Pin one frequency state forever (default: the highest)."""

    name = "fixed"

    def __init__(self, frequencies: Sequence[float], frequency: Optional[float] = None):
        freqs = tuple(frequencies)
        if frequency is None:
            frequency = freqs[-1]
        if frequency not in freqs:
            raise ValueError(
                f"fixed governor frequency {frequency} not in states {list(freqs)}"
            )
        self.frequency = float(frequency)

    def initial_frequency(self) -> float:
        return self.frequency

    def decide(self, now: float, busy_time: float) -> float:
        return self.frequency


class _UtilizationEWMA:
    """Time-weighted EWMA of the device's busy fraction.

    Batch-boundary decisions cluster during bursts: dozens of samples
    with busy fraction ~1 arrive back to back, while the long idle gap
    before the next burst contributes exactly *one* sample.  A
    constant-alpha EWMA therefore pins near 1 regardless of the true
    duty cycle.  Weighting each sample by the wall time it spans —
    ``w = wall / (wall + tau)`` — makes the estimate converge to the
    true time-averaged busy fraction: a 50 ms idle gap outweighs fifty
    0.2 ms burst samples, as it should.
    """

    def __init__(self, tau: float):
        if tau <= 0:
            raise ValueError(f"tau must be positive, got {tau}")
        self.tau = float(tau)
        self.utilization = 0.0
        self._last_now: Optional[float] = None
        self._last_busy = 0.0

    def observe(self, now: float, busy_time: float, scale: float = 1.0) -> float:
        """Fold the window since the previous call into the estimate.

        ``scale`` multiplies this window's busy fraction before folding —
        the headroom governor normalises each window by the clock it ran
        at (a per-window property, so it cannot be applied to the
        cumulative ``busy_time`` counter)."""
        if self._last_now is None:
            self._last_now = now
            self._last_busy = busy_time
            return self.utilization
        wall = now - self._last_now
        if wall > 0:
            used = min(1.0, max(0.0, (busy_time - self._last_busy) / wall)) * scale
            weight = wall / (wall + self.tau)
            self.utilization += weight * (used - self.utilization)
            self._last_now = now
            self._last_busy = busy_time
        return self.utilization


class RaceToIdleGovernor:
    """Utilization-EWMA race-to-idle.

    Above ``high`` it races at the top state (finish fast, then idle);
    below ``low`` it drops to the bottom state (the device is mostly
    idle anyway, so stretch the rare kernels and save
    ``f**(power_exponent-1)`` per joule); in between it holds the
    current state (hysteresis, so the knob doesn't chatter).  Decisions
    are a pure function of (now, cumulative busy time), so runs stay
    seed-deterministic.
    """

    name = "race_to_idle"

    def __init__(
        self,
        frequencies: Sequence[float],
        tau: float = 10e-3,
        low: float = 0.25,
        high: float = 0.75,
    ):
        if not 0 <= low < high <= 1:
            raise ValueError(
                f"need 0 <= low < high <= 1, got low={low} high={high}"
            )
        freqs = tuple(frequencies)
        self.min_frequency = freqs[0]
        self.max_frequency = freqs[-1]
        self.low = float(low)
        self.high = float(high)
        self._ewma = _UtilizationEWMA(tau)
        self._frequency = freqs[-1]

    @property
    def utilization(self) -> float:
        return self._ewma.utilization

    def initial_frequency(self) -> float:
        return self._frequency

    def decide(self, now: float, busy_time: float) -> float:
        utilization = self._ewma.observe(now, busy_time)
        if utilization >= self.high:
            self._frequency = self.max_frequency
        elif utilization <= self.low:
            self._frequency = self.min_frequency
        return self._frequency


class HeadroomGovernor:
    """Stretch kernels into the utilization headroom.

    With superlinear dynamic power, energy per kernel falls as
    ``f**(power_exponent-1)`` — so the energy-optimal stable policy is
    the *slowest* state that still keeps the device's busy fraction
    under ``target`` (queues stay stable, latency grows by at most the
    clock ratio).  The governor tracks a frequency-normalised demand
    estimate (busy fraction x current clock, i.e. the busy fraction the
    workload would produce at the top state) and picks, each batch
    boundary, the lowest state whose predicted busy fraction
    ``demand * f_max / f`` stays under ``target`` — falling back to the
    top state when even that is saturated.  This is the governor that
    traces the nontrivial edge of fig_energy's Pareto frontier.
    """

    name = "headroom"

    def __init__(
        self,
        frequencies: Sequence[float],
        tau: float = 10e-3,
        target: float = 0.85,
    ):
        if not 0 < target <= 1:
            raise ValueError(f"target must be in (0, 1], got {target}")
        self.frequencies = tuple(frequencies)
        self.max_frequency = self.frequencies[-1]
        self.target = float(target)
        self._ewma = _UtilizationEWMA(tau)
        self._frequency = self.max_frequency

    @property
    def demand(self) -> float:
        """Estimated busy fraction the workload would produce at the top
        state (frequency-normalised utilization)."""
        return self._ewma.utilization

    def initial_frequency(self) -> float:
        return self._frequency

    def decide(self, now: float, busy_time: float) -> float:
        # The window since the last decision ran entirely at the frequency
        # chosen then (frequency only changes at decisions), so normalise
        # its busy fraction by that clock before folding it in.
        raw = self._ewma.observe(
            now, busy_time, scale=self._frequency / self.max_frequency
        )
        for frequency in self.frequencies:
            if raw * self.max_frequency / frequency <= self.target:
                self._frequency = frequency
                return frequency
        self._frequency = self.max_frequency
        return self._frequency


GOVERNORS = {
    FixedGovernor.name: FixedGovernor,
    RaceToIdleGovernor.name: RaceToIdleGovernor,
    HeadroomGovernor.name: HeadroomGovernor,
}


def make_governor(name: str, frequencies: Sequence[float], **params):
    """Instantiate a registered governor over the given frequency states."""
    try:
        cls = GOVERNORS[name]
    except KeyError:
        raise ValueError(
            f"unknown governor {name!r}; expected one of {sorted(GOVERNORS)}"
        ) from None
    return cls(frequencies, **params)

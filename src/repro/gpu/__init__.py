"""Simulated GPU substrate.

The paper's testbed is 4 NVIDIA V100 GPUs; this package substitutes a
discrete-event model of those devices:

* :mod:`repro.gpu.costmodel` — batch-size -> kernel-time tables calibrated
  against the measurements the paper publishes in Figure 3 and §7.3 (LSTM
  step at h=1024: ~185 us at batch 64, ~784 us at batch 512, linear beyond).
* :mod:`repro.gpu.device` — a FIFO-stream device: kernels submitted to one
  stream run in order; completion is signalled via callbacks (the analogue
  of the paper's signal-variable polling); cross-device copies cost
  latency + size/bandwidth.
* :mod:`repro.gpu.kernel` — kernel descriptors, including the signalling
  kernel BatchMaker appends to every task.
"""

from repro.gpu.costmodel import (
    NAMED_TABLES,
    CostModel,
    LatencyTable,
    cpu_lstm_step_table,
    make_table,
    seq2seq_decoder_step_table,
    tree_internal_step_table,
    tree_leaf_step_table,
    v100_lstm_step_table,
)
from repro.gpu.device import DeviceTimeline, GPUDevice, make_devices
from repro.gpu.energy import GOVERNORS, EnergyModel, EnergySpec, make_governor
from repro.gpu.memory import DEFAULT_STATE_BYTES, MemoryModel, MemorySpec
from repro.gpu.kernel import Kernel, SignalKernel

__all__ = [
    "CostModel",
    "LatencyTable",
    "NAMED_TABLES",
    "make_table",
    "GPUDevice",
    "DeviceTimeline",
    "make_devices",
    "EnergyModel",
    "EnergySpec",
    "GOVERNORS",
    "make_governor",
    "MemoryModel",
    "MemorySpec",
    "DEFAULT_STATE_BYTES",
    "Kernel",
    "SignalKernel",
    "v100_lstm_step_table",
    "cpu_lstm_step_table",
    "seq2seq_decoder_step_table",
    "tree_internal_step_table",
    "tree_leaf_step_table",
]

"""Kernel descriptors for the simulated device.

A worker turns each batched task into a sequence of kernels pushed to one
stream; the final :class:`SignalKernel` increments a signal variable the
worker polls, which is how BatchMaker learns of completion without blocking
the stream (§5, "Asynchronous Completion Notification").
"""

from __future__ import annotations

from typing import Any, Callable


class Kernel:
    """One unit of device work: a duration plus an optional tag."""

    __slots__ = ("duration", "tag")

    def __init__(self, duration: float, tag: Any = None):
        if duration < 0:
            raise ValueError(f"kernel duration must be >= 0, got {duration}")
        self.duration = float(duration)
        self.tag = tag

    def __repr__(self) -> str:
        return f"Kernel({self.duration * 1e6:.1f}us, tag={self.tag!r})"


class SignalKernel(Kernel):
    """Zero-cost kernel that fires a completion callback when it retires.

    The callback is the simulation analogue of "increment the pinned-host
    signal variable"; the polling thread is folded into the event delivery.
    """

    __slots__ = ("callback",)

    def __init__(self, callback: Callable[[], None], tag: Any = None):
        super().__init__(0.0, tag)
        self.callback = callback

"""repro — a complete Python reproduction of *Low Latency RNN Inference
with Cellular Batching* (Gao, Yu, Wu, Li; EuroSys 2018).

Top-level entry points:

* :class:`repro.core.BatchMakerServer` — the cellular-batching inference
  server (the paper's BatchMaker).
* :mod:`repro.models` — the servable model zoo (LSTM chain, Seq2Seq,
  TreeLSTM, plus GRU / beam-search / attention extensions).
* :mod:`repro.baselines` — the graph-batching comparison systems.
* :mod:`repro.faults` — deterministic fault injection and SLA machinery
  (deadlines, retries, load shedding; DESIGN.md §8).
* :mod:`repro.experiments` — one module per paper table/figure;
  ``python -m repro.experiments.runner all`` regenerates the evaluation.

See README.md for a quickstart, DESIGN.md for the architecture and
substitution notes, and EXPERIMENTS.md for paper-vs-measured results.
"""

__version__ = "1.0.0"

"""Common serving interface shared by BatchMaker and the baseline systems.

Every server — BatchMaker (:mod:`repro.core`), the padding/bucketing server
(:mod:`repro.baselines.padded`), the dynamic graph-merge server
(:mod:`repro.baselines.fold`) and the fixed-structure ideal
(:mod:`repro.baselines.ideal`) — accepts requests through the same
``submit`` call against the same event loop, so the load generator and the
experiment harness treat them interchangeably.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional

from repro.core.request import InferenceRequest
from repro.sim.events import EventLoop


def ensure_loop(loop: Optional[EventLoop]) -> EventLoop:
    """The ``loop if loop is not None else EventLoop()`` default every
    server constructor used to spell out."""
    return loop if loop is not None else EventLoop()


class DeferredKick:
    """Coalesced end-of-timestamp dispatch.

    Both BatchMaker's manager and the graph-batching baselines defer their
    dispatch loop to the end of the current timestamp so that
    simultaneously-arriving requests can be batched together instead of
    the first one grabbing an idle device alone.  ``kick()`` arranges one
    ``fire`` at the current time via ``call_soon`` — further kicks before
    it runs coalesce into that single firing.
    """

    __slots__ = ("loop", "fn", "_pending")

    def __init__(self, loop: EventLoop, fn: Callable[[], None]):
        self.loop = loop
        self.fn = fn
        self._pending = False

    def kick(self) -> None:
        if not self._pending:
            self._pending = True
            self.loop.call_soon(self.fire)

    def fire(self) -> None:
        """Run the dispatch function now (also the coalesced callback)."""
        self._pending = False
        self.fn()


class InferenceServer:
    """Abstract server: payloads in, finished :class:`InferenceRequest`\\ s out."""

    def __init__(self, loop: EventLoop, name: str):
        self.loop = loop
        self.name = name
        self.finished: List[InferenceRequest] = []
        # Requests that reached a non-success terminal state.  Only servers
        # with SLA enforcement (BatchMaker) populate these; the baselines
        # run every request to completion.
        self.timed_out: List[InferenceRequest] = []
        self.rejected: List[InferenceRequest] = []
        self._next_request_id = 0
        # Tracing (repro.trace): a recorder plus this server's scope on it.
        # None by default — instrumentation sites guard on the scope, so an
        # untraced server pays one attribute load per site and records
        # nothing (DESIGN.md §12).
        self.trace_recorder = None
        self._trace = None
        # Load-delta hook (repro.cluster.load_index): called whenever a
        # request reaches one of this server's terminal lists — the event
        # that changes the owning replica's outstanding count.  None for a
        # standalone server (one attribute load per terminal, DESIGN.md §13).
        self.load_listener = None

    # -- to implement --------------------------------------------------------

    def _accept(self, request: InferenceRequest) -> None:
        """Called at the request's arrival time; begin serving it."""
        raise NotImplementedError

    # -- tracing ---------------------------------------------------------------

    def attach_trace(self, recorder, replica_id: Optional[int] = None) -> None:
        """Record this server's events into ``recorder``.

        ``replica_id`` stamps every event this server emits (the cluster
        re-attaches each replica's engine under its replica id; standalone
        servers stay at None).  Passing ``recorder=None`` detaches.
        Attaching never touches the event loop, so a traced run stays
        bit-identical to an untraced one.
        """
        self.trace_recorder = recorder
        self._trace = recorder.scope(replica_id) if recorder is not None else None
        self._apply_trace_scope(self._trace)

    def _apply_trace_scope(self, scope) -> None:
        """Push the scope into owned components (overridden by servers that
        delegate to a manager/scheduler)."""

    def _autotrace(self) -> None:
        """Auto-attach to the active trace session, if any (called at the
        end of each concrete server's ``__init__``).  Recorders are shared
        per event loop, so a cluster and its replicas coalesce into one."""
        from repro.trace.session import active_session

        session = active_session()
        if session is not None:
            self.attach_trace(session.recorder_for(self.loop))

    # -- shared machinery ------------------------------------------------------

    def deferred_kicker(self, fn: Callable[[], None]) -> DeferredKick:
        """A coalesced end-of-timestamp dispatcher bound to this server's
        loop (see :class:`DeferredKick`); subclasses kick it from
        ``_accept`` instead of hand-rolling a pending flag."""
        return DeferredKick(self.loop, fn)

    def submit(
        self,
        payload: Any,
        arrival_time: Optional[float] = None,
        deadline: Optional[float] = None,
    ) -> InferenceRequest:
        """Register a request to arrive at ``arrival_time`` (default: now).

        ``deadline`` is relative to the arrival time; a request that has
        not finished by then is cancelled with a terminal TIMED_OUT status
        (servers without SLA machinery ignore it).
        """
        # Read the clock once: under a wall clock now() moves between two
        # reads, so re-reading would reject every explicit arrival time.
        now = self.loop.now()
        when = now if arrival_time is None else arrival_time
        if when < now:
            raise ValueError(
                f"arrival time {when} is in the past (now={now})"
            )
        if deadline is not None and deadline <= 0:
            raise ValueError(f"deadline must be positive, got {deadline}")
        request = InferenceRequest(self._next_request_id, payload, when)
        if deadline is not None:
            request.deadline = when + deadline
        self._next_request_id += 1
        self.loop.call_at(when, lambda: self._accept(request))
        return request

    def terminal_requests(self) -> List[InferenceRequest]:
        """Every request that reached a terminal state, any status."""
        return self.finished + self.timed_out + self.rejected

    def _finish_request(self, request: InferenceRequest) -> None:
        request.mark_finished(self.loop.now())
        self.finished.append(request)
        if self.load_listener is not None:
            self.load_listener()
        if self._trace is not None:
            from repro.trace import events as trace_events

            self._trace.instant(
                trace_events.REQUEST_FINISHED,
                trace_events.LIFECYCLE,
                request_id=request.request_id,
            )

    def drain(self, until: Optional[float] = None) -> None:
        """Run the event loop until no work remains (or ``until``)."""
        self.loop.run(until=until)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r} finished={len(self.finished)}>"

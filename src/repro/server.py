"""Common serving interface shared by BatchMaker and the baseline systems.

Every server — BatchMaker (:mod:`repro.core`), the padding/bucketing server
(:mod:`repro.baselines.padded`), the dynamic graph-merge server
(:mod:`repro.baselines.fold`) and the fixed-structure ideal
(:mod:`repro.baselines.ideal`) — accepts requests through the same
``submit`` call against the same event loop, so the load generator and the
experiment harness treat them interchangeably.
"""

from __future__ import annotations

from typing import Any, List, Optional

from repro.core.request import InferenceRequest
from repro.sim.events import EventLoop


class InferenceServer:
    """Abstract server: payloads in, finished :class:`InferenceRequest`\\ s out."""

    def __init__(self, loop: EventLoop, name: str):
        self.loop = loop
        self.name = name
        self.finished: List[InferenceRequest] = []
        self._next_request_id = 0

    # -- to implement --------------------------------------------------------

    def _accept(self, request: InferenceRequest) -> None:
        """Called at the request's arrival time; begin serving it."""
        raise NotImplementedError

    # -- shared machinery ------------------------------------------------------

    def submit(self, payload: Any, arrival_time: Optional[float] = None) -> InferenceRequest:
        """Register a request to arrive at ``arrival_time`` (default: now)."""
        when = self.loop.now() if arrival_time is None else arrival_time
        if when < self.loop.now():
            raise ValueError(
                f"arrival time {when} is in the past (now={self.loop.now()})"
            )
        request = InferenceRequest(self._next_request_id, payload, when)
        self._next_request_id += 1
        self.loop.call_at(when, lambda: self._accept(request))
        return request

    def _finish_request(self, request: InferenceRequest) -> None:
        request.mark_finished(self.loop.now())
        self.finished.append(request)

    def drain(self, until: Optional[float] = None) -> None:
        """Run the event loop until no work remains (or ``until``)."""
        self.loop.run(until=until)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r} finished={len(self.finished)}>"

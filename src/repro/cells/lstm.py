"""Long Short-Term Memory cell (Hochreiter & Schmidhuber, 1997).

This is the workhorse cell of the paper's evaluation (hidden size 1024).
The implementation follows the standard formulation with a fused gate
matmul, matching the paper's microbenchmark note that one LSTM step is
"several element-wise operations and one matrix multiplication with input
tensor shapes (b, 2h) x (2h, 4h)".
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.cells.base import Cell
from repro.tensor import ops
from repro.tensor.parameters import ParameterStore


class LSTMCell(Cell):
    """One LSTM step: ``(x, h, c) -> (h, c)``.

    Gates are computed as ``[i, f, g, o] = concat(x, h) @ W + b`` with
    ``W`` of shape (input_dim + hidden, 4 * hidden), i.e. the fused layout
    the paper benchmarks.
    """

    def __init__(
        self,
        name: str,
        input_dim: int,
        hidden_dim: int,
        params: ParameterStore,
        forget_bias: float = 1.0,
    ):
        super().__init__(name, ("x", "h", "c"), ("h", "c"))
        if input_dim <= 0 or hidden_dim <= 0:
            raise ValueError("input_dim and hidden_dim must be positive")
        self.input_dim = input_dim
        self.hidden_dim = hidden_dim
        self.forget_bias = forget_bias
        self.W = params.create(f"{name}/W", (input_dim + hidden_dim, 4 * hidden_dim))
        self.b = params.create(f"{name}/b", (4 * hidden_dim,), init="zeros")

    def input_shape(self, name: str) -> Optional[Tuple[int, ...]]:
        if name == "x":
            return (self.input_dim,)
        return (self.hidden_dim,)

    def num_operators(self) -> int:
        # concat, matmul, bias add, 4 activations, 2 muls, 1 add, 1 tanh, 1 mul
        return 11

    def zero_state(self, batch: int = 1) -> Dict[str, np.ndarray]:
        """Initial (h, c) state for a fresh sequence."""
        shape = (batch, self.hidden_dim)
        return {
            "h": np.zeros(shape, dtype=self.W.dtype),
            "c": np.zeros(shape, dtype=self.W.dtype),
        }

    def compute(self, inputs: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
        x, h, c = inputs["x"], inputs["h"], inputs["c"]
        if x.shape[-1] != self.input_dim:
            raise ValueError(
                f"{self.name}: x has dim {x.shape[-1]}, expected {self.input_dim}"
            )
        gates = ops.concat([x, h], axis=-1) @ self.W + self.b
        i, f, g, o = ops.split(gates, 4, axis=-1)
        i = ops.sigmoid(i)
        f = ops.sigmoid(f + self.forget_bias)
        g = ops.tanh(g)
        o = ops.sigmoid(o)
        c_new = f * c + i * g
        h_new = o * ops.tanh(c_new)
        return {"h": h_new, "c": c_new}

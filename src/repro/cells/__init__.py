"""Batchable RNN cells.

A *cell* is the unit of batching in the paper: a sub-dataflow-graph with
embedded (shared) weights whose every input tensor has the batch dimension
as axis 0.  Cells of the same type — identical definition, identical weight
identity, identical input shapes — may be batched together.

This package provides the concrete cells used by the paper's three
applications (LSTM language model, Seq2Seq, TreeLSTM) plus a GRU extension
and generic composition utilities.
"""

from repro.cells.base import Cell, CellSignature
from repro.cells.composite import CompositeCell
from repro.cells.embedding import EmbeddingCell
from repro.cells.graph_cell import GraphCell
from repro.cells.gru import GRUCell
from repro.cells.lstm import LSTMCell
from repro.cells.projection import ProjectionCell
from repro.cells.tree_lstm import TreeInternalCell, TreeLeafCell

__all__ = [
    "Cell",
    "CellSignature",
    "CompositeCell",
    "EmbeddingCell",
    "GraphCell",
    "GRUCell",
    "LSTMCell",
    "ProjectionCell",
    "TreeInternalCell",
    "TreeLeafCell",
]

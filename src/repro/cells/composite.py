"""Composition of cells into larger cells.

The paper lets users group several operators into one cell so the unfolded
graph stays coarse (§3.1: "a complex cell such as LSTM not only contains
many operators but also its own internal recursion").  ``CompositeCell``
is the mechanism here: it chains member cells, wiring each member's inputs
either from the composite's external inputs or from earlier members'
outputs.  The Seq2Seq encoder cell (embedding -> LSTM) and decoder cell
(embedding -> LSTM -> projection) are both composites.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cells.base import Cell


class CompositeCell(Cell):
    """Chain member cells into one batchable unit.

    Parameters
    ----------
    stages:
        Ordered list of ``(cell, wiring)`` pairs.  ``wiring`` maps each
        member-cell input name to a source reference: either
        ``("external", name)`` for one of the composite's declared inputs or
        ``("stage", i, output_name)`` for output ``output_name`` of the
        ``i``-th earlier stage.
    exports:
        Maps each composite output name to ``("stage", i, output_name)``.
    """

    def __init__(
        self,
        name: str,
        input_names: Sequence[str],
        output_names: Sequence[str],
        stages: Sequence[Tuple[Cell, Dict[str, tuple]]],
        exports: Dict[str, tuple],
    ):
        super().__init__(name, input_names, output_names)
        self.stages: List[Tuple[Cell, Dict[str, tuple]]] = list(stages)
        self.exports = dict(exports)
        self._validate_wiring()

    def _validate_wiring(self) -> None:
        for idx, (cell, wiring) in enumerate(self.stages):
            for input_name in cell.input_names:
                if input_name not in wiring:
                    raise ValueError(
                        f"composite {self.name!r}: stage {idx} ({cell.name!r}) "
                        f"input {input_name!r} is unwired"
                    )
            for src in wiring.values():
                self._check_ref(src, max_stage=idx)
        for out in self.output_names:
            if out not in self.exports:
                raise ValueError(
                    f"composite {self.name!r}: output {out!r} is unexported"
                )
        for ref in self.exports.values():
            self._check_ref(ref, max_stage=len(self.stages))

    def _check_ref(self, ref: tuple, max_stage: int) -> None:
        if ref[0] == "external":
            if ref[1] not in self.input_names:
                raise ValueError(
                    f"composite {self.name!r}: unknown external input {ref[1]!r}"
                )
        elif ref[0] == "stage":
            stage_idx, out_name = ref[1], ref[2]
            if not 0 <= stage_idx < max_stage:
                raise ValueError(
                    f"composite {self.name!r}: reference to stage {stage_idx} "
                    f"is out of range (must precede stage {max_stage})"
                )
            if out_name not in self.stages[stage_idx][0].output_names:
                raise ValueError(
                    f"composite {self.name!r}: stage {stage_idx} has no "
                    f"output {out_name!r}"
                )
        else:
            raise ValueError(f"bad wiring reference {ref!r}")

    def num_operators(self) -> int:
        return sum(cell.num_operators() for cell, _ in self.stages)

    def input_shape(self, name: str) -> Optional[Tuple[int, ...]]:
        # Delegate to the first stage that consumes this external input.
        for cell, wiring in self.stages:
            for input_name, src in wiring.items():
                if src[0] == "external" and src[1] == name:
                    return cell.input_shape(input_name)
        return None

    def compute(self, inputs: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
        stage_outputs: List[Dict[str, np.ndarray]] = []
        for cell, wiring in self.stages:
            cell_inputs = {}
            for input_name, src in wiring.items():
                if src[0] == "external":
                    cell_inputs[input_name] = inputs[src[1]]
                else:
                    cell_inputs[input_name] = stage_outputs[src[1]][src[2]]
            stage_outputs.append(cell(cell_inputs))
        result = {}
        for out, ref in self.exports.items():
            result[out] = stage_outputs[ref[1]][ref[2]]
        return result

"""A cell whose body is a :class:`~repro.tensor.graph.DataflowGraph`.

This mirrors the paper's user interface: "users define each RNN cell using
MXNet/TensorFlow's Python interface and save the cell's dataflow graph in a
JSON file ... the saved file is given to BatchMaker as the cell definition."
Here the JSON produced by ``DataflowGraph.to_json`` plus a parameter store
plays that role.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.cells.base import Cell
from repro.tensor.graph import DataflowGraph
from repro.tensor.parameters import ParameterStore


class GraphCell(Cell):
    """Wrap a dataflow graph (optionally loaded from JSON) as a cell."""

    def __init__(
        self,
        graph: DataflowGraph,
        params: ParameterStore,
        input_shapes: Optional[Dict[str, Tuple[int, ...]]] = None,
    ):
        super().__init__(graph.name, graph.placeholders, graph.outputs)
        self.graph = graph
        self.params = params
        self._input_shapes = dict(input_shapes or {})
        # Fail fast if the graph references weights the store lacks.
        missing = [p for p in graph.param_names if p not in params]
        if missing:
            raise KeyError(f"parameter store missing weights: {missing}")
        graph.topological_order()  # validate acyclicity up front

    @classmethod
    def from_json(
        cls,
        text: str,
        params: ParameterStore,
        input_shapes: Optional[Dict[str, Tuple[int, ...]]] = None,
    ) -> "GraphCell":
        """Load a cell definition the way BatchMaker loads MXNet JSON."""
        return cls(DataflowGraph.from_json(text), params, input_shapes)

    def input_shape(self, name: str) -> Optional[Tuple[int, ...]]:
        return self._input_shapes.get(name)

    def num_operators(self) -> int:
        return self.graph.num_operators()

    def compute(self, inputs: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
        weights = {p: self.params.get(p) for p in self.graph.param_names}
        return self.graph.run(inputs, weights)

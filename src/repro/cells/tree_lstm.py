"""Binary TreeLSTM cells (Tai et al., 2015 — the N-ary variant with N=2).

The paper's TreeLSTM application has exactly two cell types — a leaf cell
and an internal cell — which do not share weights with each other but do
share weights across all of their own instances.  That two-type structure
is what makes TreeLSTM the interesting scheduling case (leaf vs internal
priority, shrinking batches toward the root).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.cells.base import Cell
from repro.tensor import ops
from repro.tensor.parameters import ParameterStore


class TreeLeafCell(Cell):
    """Leaf cell: ``(ids,) -> (h, c)``.

    Embeds the word id and applies input/output gating with no recurrent
    term (a leaf has no children).
    """

    def __init__(
        self,
        name: str,
        vocab_size: int,
        embed_dim: int,
        hidden_dim: int,
        params: ParameterStore,
    ):
        super().__init__(name, ("ids",), ("h", "c"))
        if min(vocab_size, embed_dim, hidden_dim) <= 0:
            raise ValueError("vocab_size, embed_dim, hidden_dim must be positive")
        self.vocab_size = vocab_size
        self.embed_dim = embed_dim
        self.hidden_dim = hidden_dim
        self.table = params.create(
            f"{name}/table", (vocab_size, embed_dim), init="normal"
        )
        # i, o, u gates from the embedded input.
        self.W = params.create(f"{name}/W", (embed_dim, 3 * hidden_dim))
        self.b = params.create(f"{name}/b", (3 * hidden_dim,), init="zeros")

    def input_shape(self, name: str) -> Optional[Tuple[int, ...]]:
        return ()

    def num_operators(self) -> int:
        return 8  # lookup, matmul, add, 3 activations, mul, mul

    def compute(self, inputs: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
        ids = np.asarray(inputs["ids"]).reshape(-1).astype(np.int64)
        x = ops.embedding_lookup(self.table, ids)
        gates = x @ self.W + self.b
        i, o, u = ops.split(gates, 3, axis=-1)
        i = ops.sigmoid(i)
        o = ops.sigmoid(o)
        u = ops.tanh(u)
        c = i * u
        h = o * ops.tanh(c)
        return {"h": h, "c": c}


class TreeInternalCell(Cell):
    """Internal cell: ``(h_l, c_l, h_r, c_r) -> (h, c)``.

    Binary N-ary TreeLSTM with a separate forget gate per child, following
    Tai et al. equations (no input word at internal nodes, matching the
    TreeBank sentiment setting the paper evaluates).
    """

    def __init__(self, name: str, hidden_dim: int, params: ParameterStore):
        super().__init__(name, ("h_l", "c_l", "h_r", "c_r"), ("h", "c"))
        if hidden_dim <= 0:
            raise ValueError("hidden_dim must be positive")
        self.hidden_dim = hidden_dim
        # Fused transform: [h_l, h_r] -> [i, f_l, f_r, o, u]
        self.W = params.create(f"{name}/W", (2 * hidden_dim, 5 * hidden_dim))
        self.b = params.create(f"{name}/b", (5 * hidden_dim,), init="zeros")

    def input_shape(self, name: str) -> Optional[Tuple[int, ...]]:
        return (self.hidden_dim,)

    def num_operators(self) -> int:
        return 13

    def compute(self, inputs: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
        h_l, c_l = inputs["h_l"], inputs["c_l"]
        h_r, c_r = inputs["h_r"], inputs["c_r"]
        gates = ops.concat([h_l, h_r], axis=-1) @ self.W + self.b
        i, f_l, f_r, o, u = ops.split(gates, 5, axis=-1)
        i = ops.sigmoid(i)
        f_l = ops.sigmoid(f_l + 1.0)  # forget bias 1.0, standard practice
        f_r = ops.sigmoid(f_r + 1.0)
        o = ops.sigmoid(o)
        u = ops.tanh(u)
        c = i * u + f_l * c_l + f_r * c_r
        h = o * ops.tanh(c)
        return {"h": h, "c": c}

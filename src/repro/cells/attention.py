"""Attention cells (Bahdanau-style additive attention) — extension.

Attention gives every decoder step access to all encoder states, which is
at odds with fixed-shape cell batching: different requests have different
source lengths.  The standard serving resolution — used here — is a
fixed-capacity *memory*: each request carries a padded (max_src, hidden)
tensor plus a validity mask, so all attention cells share one shape and
batch freely.

Two cells:

* :class:`AttentionEncoderCell` — an LSTM step that additionally writes its
  output state into its position of the memory tensor, threading the memory
  through the encoder chain;
* :class:`AttentionDecoderCell` — embeds the previous token, attends over
  the memory (masked additive attention), feeds [embedding; context] to an
  LSTM step and projects to the vocabulary.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.cells.base import Cell
from repro.cells.embedding import EmbeddingCell
from repro.cells.lstm import LSTMCell
from repro.cells.projection import ProjectionCell
from repro.tensor import ops
from repro.tensor.parameters import ParameterStore


class AttentionEncoderCell(Cell):
    """Encoder step: ``(ids, h, c, mem, pos) -> (h, c, mem)``.

    ``mem`` is the request's (max_src, hidden) memory; the step writes its
    new hidden state into row ``pos`` (an integer per example).
    """

    def __init__(
        self,
        name: str,
        vocab_size: int,
        embed_dim: int,
        hidden_dim: int,
        max_src: int,
        params: ParameterStore,
    ):
        super().__init__(name, ("ids", "h", "c", "mem", "pos"), ("h", "c", "mem"))
        if max_src < 1:
            raise ValueError("max_src must be >= 1")
        self.max_src = max_src
        self.hidden_dim = hidden_dim
        self.embed = EmbeddingCell(f"{name}/embed", vocab_size, embed_dim, params)
        self.lstm = LSTMCell(f"{name}/lstm", embed_dim, hidden_dim, params)

    def input_shape(self, name: str) -> Optional[Tuple[int, ...]]:
        if name == "ids" or name == "pos":
            return ()
        if name == "mem":
            return (self.max_src, self.hidden_dim)
        return (self.hidden_dim,)

    def num_operators(self) -> int:
        return self.embed.num_operators() + self.lstm.num_operators() + 1

    def compute(self, inputs: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
        x = self.embed({"ids": inputs["ids"]})["emb"]
        out = self.lstm({"x": x, "h": inputs["h"], "c": inputs["c"]})
        pos = np.asarray(inputs["pos"]).reshape(-1).astype(np.int64)
        if pos.size and (pos.min() < 0 or pos.max() >= self.max_src):
            raise IndexError(
                f"encoder position out of memory range [0, {self.max_src})"
            )
        mem = np.array(inputs["mem"], copy=True)
        mem[np.arange(mem.shape[0]), pos] = out["h"]
        return {"h": out["h"], "c": out["c"], "mem": mem}


class AttentionDecoderCell(Cell):
    """Decoder step with additive attention:
    ``(ids, h, c, mem, mask) -> (h, c, token)``."""

    def __init__(
        self,
        name: str,
        vocab_size: int,
        embed_dim: int,
        hidden_dim: int,
        max_src: int,
        params: ParameterStore,
        attention_dim: Optional[int] = None,
    ):
        super().__init__(name, ("ids", "h", "c", "mem", "mask"), ("h", "c", "token"))
        if max_src < 1:
            raise ValueError("max_src must be >= 1")
        self.max_src = max_src
        self.hidden_dim = hidden_dim
        attn = attention_dim if attention_dim is not None else hidden_dim // 2 or 1
        self.embed = EmbeddingCell(f"{name}/embed", vocab_size, embed_dim, params)
        self.lstm = LSTMCell(
            f"{name}/lstm", embed_dim + hidden_dim, hidden_dim, params
        )
        self.proj = ProjectionCell(f"{name}/proj", hidden_dim, vocab_size, params)
        self.W_mem = params.create(f"{name}/attn/W_mem", (hidden_dim, attn))
        self.W_query = params.create(f"{name}/attn/W_query", (hidden_dim, attn))
        self.v = params.create(f"{name}/attn/v", (attn,))

    def input_shape(self, name: str) -> Optional[Tuple[int, ...]]:
        if name == "ids":
            return ()
        if name == "mem":
            return (self.max_src, self.hidden_dim)
        if name == "mask":
            return (self.max_src,)
        return (self.hidden_dim,)

    def num_operators(self) -> int:
        return (
            self.embed.num_operators()
            + self.lstm.num_operators()
            + self.proj.num_operators()
            + 6  # attention: 2 matmuls, tanh, score, softmax, context
        )

    def attention_weights(
        self, h: np.ndarray, mem: np.ndarray, mask: np.ndarray
    ) -> np.ndarray:
        """Masked additive attention: (batch, max_src) weights over memory."""
        # (batch, max_src, attn) + (batch, 1, attn)
        energy = ops.tanh(mem @ self.W_mem + (h @ self.W_query)[:, None, :])
        scores = energy @ self.v  # (batch, max_src)
        scores = np.where(mask > 0, scores, -1e9)
        return ops.softmax(scores, axis=-1)

    def compute(self, inputs: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
        x = self.embed({"ids": inputs["ids"]})["emb"]
        mem = np.asarray(inputs["mem"])
        mask = np.asarray(inputs["mask"])
        weights = self.attention_weights(inputs["h"], mem, mask)
        context = np.einsum("bs,bsh->bh", weights, mem)
        out = self.lstm(
            {
                "x": ops.concat([x, context], axis=-1),
                "h": inputs["h"],
                "c": inputs["c"],
            }
        )
        token = self.proj({"h": out["h"]})["token"]
        return {"h": out["h"], "c": out["c"], "token": token}

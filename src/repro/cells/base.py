"""Base class and type identity for batchable cells."""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np


class CellSignature:
    """Identity of a cell *type*.

    Per the paper (§3.1): two cells are of the same type if they have
    identical sub-graphs, share the same parameter weights, and expect the
    same number of identically-shaped input tensors.  We capture that as
    (definition name, weight-store identity, input shapes).
    """

    __slots__ = ("definition", "weights_id", "input_shapes")

    def __init__(
        self,
        definition: str,
        weights_id: int,
        input_shapes: Tuple[Tuple[int, ...], ...],
    ):
        self.definition = definition
        self.weights_id = weights_id
        self.input_shapes = input_shapes

    def _key(self):
        return (self.definition, self.weights_id, self.input_shapes)

    def __eq__(self, other) -> bool:
        return isinstance(other, CellSignature) and self._key() == other._key()

    def __hash__(self) -> int:
        return hash(self._key())

    def __repr__(self) -> str:
        return f"CellSignature({self.definition!r}, weights=0x{self.weights_id:x})"


class Cell:
    """A batchable computation unit.

    Subclasses declare named inputs/outputs and implement :meth:`compute`,
    which maps a dict of batched input tensors (axis 0 = batch) to a dict of
    batched outputs.  Weights are embedded at construction, mirroring how
    BatchMaker folds pre-trained weights into cell state at initialisation.

    ``num_operators`` is used by the GPU simulator to count kernel launches
    per batched task.
    """

    def __init__(
        self,
        name: str,
        input_names: Sequence[str],
        output_names: Sequence[str],
    ):
        if not name:
            raise ValueError("cell name must be non-empty")
        self.name = name
        self.input_names = tuple(input_names)
        self.output_names = tuple(output_names)
        dupes = set(self.input_names) & set(self.output_names)
        # Shared names are allowed (e.g. h in, h out) and mean "recurrent".

    # -- interface ---------------------------------------------------------

    def compute(self, inputs: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
        """Run the batched forward computation."""
        raise NotImplementedError

    def num_operators(self) -> int:
        """How many primitive operators (kernels) one execution launches."""
        raise NotImplementedError

    def input_shape(self, name: str) -> Optional[Tuple[int, ...]]:
        """Per-example shape of input ``name`` (without batch dim), if known."""
        return None

    def signature(self) -> CellSignature:
        """Type identity used to decide which cells may batch together."""
        shapes = tuple(
            self.input_shape(n) if self.input_shape(n) is not None else ()
            for n in self.input_names
        )
        return CellSignature(self.name, id(self), shapes)

    # -- helpers -----------------------------------------------------------

    def _validate_inputs(self, inputs: Dict[str, np.ndarray]) -> None:
        missing = [n for n in self.input_names if n not in inputs]
        if missing:
            raise KeyError(f"cell {self.name!r} missing inputs: {missing}")

    def __call__(self, inputs: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
        self._validate_inputs(inputs)
        outputs = self.compute(inputs)
        missing = [n for n in self.output_names if n not in outputs]
        if missing:
            raise RuntimeError(
                f"cell {self.name!r} did not produce outputs: {missing}"
            )
        return outputs

    def __repr__(self) -> str:
        return (
            f"<{type(self).__name__} {self.name!r} "
            f"in={list(self.input_names)} out={list(self.output_names)}>"
        )

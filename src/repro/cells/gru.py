"""Gated Recurrent Unit cell (extension beyond the paper's three models).

Cellular batching is agnostic to the cell body; providing a second chain
cell demonstrates that and is exercised by the ablation benchmarks.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.cells.base import Cell
from repro.tensor import ops
from repro.tensor.parameters import ParameterStore


class GRUCell(Cell):
    """One GRU step: ``(x, h) -> (h,)``."""

    def __init__(
        self,
        name: str,
        input_dim: int,
        hidden_dim: int,
        params: ParameterStore,
    ):
        super().__init__(name, ("x", "h"), ("h",))
        if input_dim <= 0 or hidden_dim <= 0:
            raise ValueError("input_dim and hidden_dim must be positive")
        self.input_dim = input_dim
        self.hidden_dim = hidden_dim
        # Fused reset/update gates and a separate candidate transform.
        self.W_gates = params.create(
            f"{name}/W_gates", (input_dim + hidden_dim, 2 * hidden_dim)
        )
        self.b_gates = params.create(
            f"{name}/b_gates", (2 * hidden_dim,), init="zeros"
        )
        self.W_cand = params.create(
            f"{name}/W_cand", (input_dim + hidden_dim, hidden_dim)
        )
        self.b_cand = params.create(f"{name}/b_cand", (hidden_dim,), init="zeros")

    def input_shape(self, name: str) -> Optional[Tuple[int, ...]]:
        if name == "x":
            return (self.input_dim,)
        return (self.hidden_dim,)

    def num_operators(self) -> int:
        return 12

    def zero_state(self, batch: int = 1) -> Dict[str, np.ndarray]:
        return {"h": np.zeros((batch, self.hidden_dim), dtype=self.W_gates.dtype)}

    def compute(self, inputs: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
        x, h = inputs["x"], inputs["h"]
        if x.shape[-1] != self.input_dim:
            raise ValueError(
                f"{self.name}: x has dim {x.shape[-1]}, expected {self.input_dim}"
            )
        gates = ops.sigmoid(ops.concat([x, h], axis=-1) @ self.W_gates + self.b_gates)
        r, z = ops.split(gates, 2, axis=-1)
        cand = ops.tanh(ops.concat([x, r * h], axis=-1) @ self.W_cand + self.b_cand)
        h_new = z * h + (1.0 - z) * cand
        return {"h": h_new}

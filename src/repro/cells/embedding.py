"""Word-embedding lookup cell."""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.cells.base import Cell
from repro.tensor import ops
from repro.tensor.parameters import ParameterStore


class EmbeddingCell(Cell):
    """Token-id to vector lookup: ``(ids,) -> (emb,)``.

    ``ids`` is a batched int vector of shape (batch,).  In the cell graphs,
    embedding lookups are fused into the step cells (see
    :class:`repro.cells.composite.CompositeCell`) the way the paper folds
    the lookup into the encoder/decoder cell bodies.
    """

    def __init__(self, name: str, vocab_size: int, embed_dim: int, params: ParameterStore):
        super().__init__(name, ("ids",), ("emb",))
        if vocab_size <= 0 or embed_dim <= 0:
            raise ValueError("vocab_size and embed_dim must be positive")
        self.vocab_size = vocab_size
        self.embed_dim = embed_dim
        self.table = params.create(f"{name}/table", (vocab_size, embed_dim), init="normal")

    def input_shape(self, name: str) -> Optional[Tuple[int, ...]]:
        return ()  # scalar id per example

    def num_operators(self) -> int:
        return 1

    def compute(self, inputs: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
        ids = np.asarray(inputs["ids"]).reshape(-1).astype(np.int64)
        return {"emb": ops.embedding_lookup(self.table, ids)}

"""Output projection cell: hidden state -> vocabulary logits (+ argmax).

In the paper's Seq2Seq model this projection dominates decode-phase cost
(the (b, h) x (h, vocab) matmul), which is why the decoder's optimal batch
size (256) differs from the encoder's (512).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.cells.base import Cell
from repro.tensor import ops
from repro.tensor.parameters import ParameterStore


class ProjectionCell(Cell):
    """``(h,) -> (logits, token)`` where token = argmax(logits).

    The paper notes argmax is unoptimised in MXNet/TF and that they wrote a
    custom CUDA kernel for all systems; here it is a single NumPy argmax.
    """

    def __init__(self, name: str, hidden_dim: int, vocab_size: int, params: ParameterStore):
        super().__init__(name, ("h",), ("logits", "token"))
        if hidden_dim <= 0 or vocab_size <= 0:
            raise ValueError("hidden_dim and vocab_size must be positive")
        self.hidden_dim = hidden_dim
        self.vocab_size = vocab_size
        self.W = params.create(f"{name}/W", (hidden_dim, vocab_size))
        self.b = params.create(f"{name}/b", (vocab_size,), init="zeros")

    def input_shape(self, name: str) -> Optional[Tuple[int, ...]]:
        return (self.hidden_dim,)

    def num_operators(self) -> int:
        return 3  # matmul, bias add, argmax

    def compute(self, inputs: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
        h = inputs["h"]
        if h.shape[-1] != self.hidden_dim:
            raise ValueError(
                f"{self.name}: h has dim {h.shape[-1]}, expected {self.hidden_dim}"
            )
        logits = h @ self.W + self.b
        return {"logits": logits, "token": ops.argmax(logits, axis=-1)}

"""Baseline serving systems the paper compares against.

All baselines implement *graph batching*: they collect a set of requests,
fuse their dataflow graphs, execute the fused graph to completion, and only
then start the next batch.  The three variants are:

* :class:`~repro.baselines.padded.PaddedServer` — padding + length
  bucketing + round-robin, the MXNet/TensorFlow serving policy of §7.1;
* :class:`~repro.baselines.fold.FoldServer` — dynamic graph merging at
  batch time, the TensorFlow Fold / DyNet policy of §7.5 (the two differ
  only in merge overhead and whether merging overlaps execution);
* :class:`~repro.baselines.ideal.IdealServer` — a hard-coded
  fixed-structure executor with zero scheduling overhead, the "ideal"
  comparator of Figure 15.
"""

from repro.baselines.fold import FoldServer
from repro.baselines.ideal import IdealServer
from repro.baselines.padded import PaddedServer
from repro.baselines.timeout import TimeoutPaddedServer

__all__ = ["PaddedServer", "FoldServer", "IdealServer", "TimeoutPaddedServer"]

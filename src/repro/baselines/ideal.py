"""Ideal fixed-structure baseline (paper Figure 15).

For workloads where every request has the *identical* structure, the ideal
comparator hard-codes one dataflow graph matching that structure; each node
executes up to ``max_batch`` corresponding operations, one per request in
the batch, with zero scheduling or merge overhead.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Tuple

from repro.baselines.base import GraphBatchingServer
from repro.core.cell_graph import CellGraph
from repro.core.request import InferenceRequest
from repro.models.base import Model
from repro.server import ensure_loop
from repro.sim.events import EventLoop


class IdealServer(GraphBatchingServer):
    """Hard-coded graph batching for identical-structure requests.

    The structure is taken from ``template_payload``; submitting a request
    whose cell census differs is an error (the real system would produce
    wrong results silently — we fail loudly instead).
    """

    def __init__(
        self,
        model: Model,
        template_payload,
        max_batch: int = 64,
        num_gpus: int = 1,
        loop: Optional[EventLoop] = None,
        name: str = "Ideal",
    ):
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        super().__init__(
            ensure_loop(loop), name, model, num_gpus
        )
        self.max_batch = max_batch
        template = CellGraph()
        model.unfold(template, template_payload)
        self._template_census = template.cell_type_census()
        # One kernel per template node, each at the batch size.
        self._node_types = [node.cell_type.name for node in template.nodes()]
        self._queue: Deque[InferenceRequest] = deque()

    def _enqueue(self, request: InferenceRequest) -> None:
        graph = CellGraph()
        self.model.unfold(graph, request.payload)
        if graph.cell_type_census() != self._template_census:
            raise ValueError(
                "IdealServer received a request whose structure differs from "
                f"the template: {graph.cell_type_census()} vs "
                f"{self._template_census}"
            )
        self._queue.append(request)

    def _next_batch(self) -> Optional[Tuple[List[InferenceRequest], float]]:
        if not self._queue:
            return None
        batch = [
            self._queue.popleft()
            for _ in range(min(self.max_batch, len(self._queue)))
        ]
        duration = sum(
            self.cost_model.kernel_time(cell_name, len(batch))
            for cell_name in self._node_types
        )
        return batch, duration

"""Dynamic graph-merge server (the TensorFlow Fold / DyNet baseline).

These systems "first generate the dataflow graph for each input and then
attempt to merge all dataflow graphs into one graph by combining nodes
corresponding to the same operation while maintaining the data dependency"
(§8).  Modelled here:

* when a device is idle, up to ``max_requests`` queued requests (FIFO)
  form a batch;
* each request's cell graph is unfolded and the merged graph executes
  level-synchronously: at each depth level, same-type cells across all
  requests in the batch fuse into one batched kernel — so batch sizes
  shrink toward the top of the trees (§7.5);
* merging costs ``merge_overhead_per_request``.  TensorFlow Fold's merge is
  large and (after the paper's optimisation) overlapped with execution
  (``overlap_merge=True`` makes batch time ``max(compute, merge)``);
  DyNet's merge is small but serial (``overlap_merge=False`` adds it).

The two published baselines are provided as constructors
:meth:`FoldServer.tensorflow_fold` and :meth:`FoldServer.dynet`.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from repro.baselines.base import GraphBatchingServer
from repro.core.cell_graph import CellGraph
from repro.core.request import InferenceRequest
from repro.models.base import Model
from repro.server import ensure_loop
from repro.sim.events import EventLoop


def level_census(graph: CellGraph) -> Dict[int, Dict[str, int]]:
    """Per-depth-level, per-cell-type node counts.

    A node's level is 1 + the maximum level of its predecessors (sources are
    level 0) — the schedule both Fold and DyNet use when batching a merged
    graph.
    """
    levels: Dict[int, int] = {}
    census: Dict[int, Dict[str, int]] = {}
    # Nodes are created in topological order (add_node validates that all
    # predecessors already exist), so a single pass in id order suffices.
    for node in sorted(graph.nodes(), key=lambda n: n.node_id):
        preds = node.predecessors()
        level = 0 if not preds else 1 + max(levels[p] for p in preds)
        levels[node.node_id] = level
        census.setdefault(level, {})
        name = node.cell_type.name
        census[level][name] = census[level].get(name, 0) + 1
    return census


class FoldServer(GraphBatchingServer):
    """Graph batching via dynamic dataflow-graph merging."""

    def __init__(
        self,
        model: Model,
        max_requests: int = 64,
        num_gpus: int = 1,
        loop: Optional[EventLoop] = None,
        merge_overhead_per_request: float = 0.0,
        overlap_merge: bool = False,
        per_level_overhead: float = 20e-6,
        name: str = "Fold",
    ):
        if max_requests < 1:
            raise ValueError("max_requests must be >= 1")
        super().__init__(
            ensure_loop(loop), name, model, num_gpus
        )
        self.max_requests = max_requests
        self.merge_overhead_per_request = merge_overhead_per_request
        self.overlap_merge = overlap_merge
        self.per_level_overhead = per_level_overhead
        self._queue: Deque[InferenceRequest] = deque()

    # -- published configurations ------------------------------------------------

    @classmethod
    def tensorflow_fold(cls, model: Model, **kwargs) -> "FoldServer":
        """TF Fold v0.0.1 per §7.5: very large per-request graph
        construction/merge cost, overlapped with execution after the
        paper's optimisation (imperfectly, due to Python threading — folded
        into the overhead constant)."""
        kwargs.setdefault("merge_overhead_per_request", 1.2e-3)
        kwargs.setdefault("overlap_merge", True)
        kwargs.setdefault("name", "TF Fold")
        return cls(model, **kwargs)

    @classmethod
    def dynet(cls, model: Model, **kwargs) -> "FoldServer":
        """DyNet v2.0 per §7.5: much smaller merge overhead, not overlapped."""
        kwargs.setdefault("merge_overhead_per_request", 0.35e-3)
        kwargs.setdefault("overlap_merge", False)
        kwargs.setdefault("name", "DyNet")
        return cls(model, **kwargs)

    # -- policy --------------------------------------------------------------------

    def _enqueue(self, request: InferenceRequest) -> None:
        self._queue.append(request)

    def _next_batch(self) -> Optional[Tuple[List[InferenceRequest], float]]:
        if not self._queue:
            return None
        batch = [
            self._queue.popleft()
            for _ in range(min(self.max_requests, len(self._queue)))
        ]
        return batch, self._duration(batch)

    def _duration(self, batch: List[InferenceRequest]) -> float:
        # Merge the per-request graphs level by level.
        merged: Dict[int, Dict[str, int]] = {}
        for request in batch:
            graph = CellGraph()
            self.model.unfold(graph, request.payload)
            for level, by_type in level_census(graph).items():
                slot = merged.setdefault(level, {})
                for name, count in by_type.items():
                    slot[name] = slot.get(name, 0) + count
        compute = 0.0
        for level in sorted(merged):
            for cell_name, count in merged[level].items():
                compute += self.cost_model.kernel_time(cell_name, count)
            compute += self.per_level_overhead
        merge = self.merge_overhead_per_request * len(batch)
        if self.overlap_merge:
            return max(compute, merge)
        return compute + merge

"""Timeout-based batching variant of the padding baseline.

The paper's baselines deliberately do *not* use timeouts: "we do not use
explicit timeouts when accumulating requests to form a batch; rather, even
if it's not full, a batch can start execution as long as some GPU device is
idle and it is the batch's turn ... Additionally, we found that this
strategy achieves lower latency than any configuration of the timeout-based
strategy" (§7.1).

This module implements the timeout-based strategy so that claim can be
reproduced (see ``benchmarks/test_timeout_ablation.py``): a bucket's batch
is dispatched only once it is full **or** its oldest request has waited
``timeout`` seconds — the policy Clipper-style servers use.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.baselines.padded import PaddedServer
from repro.core.request import InferenceRequest


class TimeoutPaddedServer(PaddedServer):
    """Padding + bucketing, but batches wait for ``timeout`` or fullness."""

    def __init__(self, *args, timeout: float = 2e-3, **kwargs):
        if timeout < 0:
            raise ValueError("timeout must be non-negative")
        kwargs.setdefault("name", f"Padded(timeout={timeout * 1e3:g}ms)")
        super().__init__(*args, **kwargs)
        self.timeout = timeout
        self._timer_scheduled = False

    # -- policy override -------------------------------------------------------

    def _enqueue(self, request: InferenceRequest) -> None:
        super()._enqueue(request)
        # Arrange a wake-up for when this request's timeout expires, since a
        # bucket below max batch is not dispatchable until then.
        self.loop.call_after(self.timeout, self._deferred_dispatch)

    def _next_batch(self) -> Optional[Tuple[List[InferenceRequest], float]]:
        """Dispatch only full buckets, or buckets whose head timed out."""
        if not self._rr_ring:
            return None
        now = self.loop.now()
        n = len(self._rr_ring)
        for offset in range(n):
            key = self._rr_ring[(self._rr_index + offset) % n]
            queue = self._buckets[key]
            if not queue:
                continue
            full = len(queue) >= self.max_batch
            expired = now - queue[0].arrival_time >= self.timeout
            if full or expired:
                self._rr_index = (self._rr_index + offset + 1) % n
                batch = [
                    queue.popleft()
                    for _ in range(min(self.max_batch, len(queue)))
                ]
                return batch, self._duration(key, batch)
        return None

"""Shared machinery for graph-batching baseline servers.

A graph-batching server keeps arriving requests in one or more queues.
Whenever a device is idle it forms the next batch (subclass policy),
executes the whole fused graph as one uninterruptible unit, and completes
every request in the batch at the same instant — exactly the behaviour
cellular batching removes (no joining, no early leaving).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.request import InferenceRequest
from repro.gpu.device import make_devices
from repro.models.base import Model
from repro.server import InferenceServer
from repro.sim.events import EventLoop


class GraphBatchingServer(InferenceServer):
    """Base class: idle-device dispatch loop over a batch-forming policy."""

    def __init__(
        self,
        loop: EventLoop,
        name: str,
        model: Model,
        num_gpus: int = 1,
    ):
        super().__init__(loop, name)
        self.model = model
        self.cost_model = model.default_cost_model()
        self.devices = make_devices(loop, num_gpus)
        self._device_busy = [False] * num_gpus
        self._dispatch = self.deferred_kicker(self._dispatch_idle_devices)
        self.batches_executed = 0
        self.batch_sizes: List[int] = []
        self._autotrace()

    # -- subclass policy ------------------------------------------------------

    def _enqueue(self, request: InferenceRequest) -> None:
        """Store an arriving request until it is batched."""
        raise NotImplementedError

    def _next_batch(self) -> Optional[Tuple[List[InferenceRequest], float]]:
        """Pop the next batch to execute and its fused-graph duration, or
        None when nothing is runnable."""
        raise NotImplementedError

    # -- dispatch loop -----------------------------------------------------------

    def _per_request_padding(self, requests, duration: float) -> List[float]:
        """Seconds of ``duration`` that are padding waste for each request
        (slots computed past the request's own length).  The base policy
        pads nothing; :class:`~repro.baselines.padded.PaddedServer`
        overrides with its per-phase bucket-ceiling formula."""
        return [0.0] * len(requests)

    def _accept(self, request: InferenceRequest) -> None:
        if self._trace is not None:
            from repro.trace import events as trace_events

            self._trace.instant(
                trace_events.REQUEST_ARRIVAL,
                trace_events.LIFECYCLE,
                request_id=request.request_id,
            )
        self._enqueue(request)
        # Defer dispatch to the end of the current timestamp so that
        # simultaneously-arriving requests land in one batch rather than the
        # first of them grabbing an idle device alone.
        self._dispatch.kick()

    def _deferred_dispatch(self) -> None:
        # Retained entry point for timer-driven wake-ups (TimeoutPaddedServer).
        self._dispatch.fire()

    def _dispatch_idle_devices(self) -> None:
        for device_id, device in enumerate(self.devices):
            if self._device_busy[device_id]:
                continue
            batch = self._next_batch()
            if batch is None:
                continue
            requests, duration = batch
            if not requests:
                raise RuntimeError("batch policy returned an empty batch")
            self._device_busy[device_id] = True
            now = self.loop.now()
            for request in requests:
                request.mark_started(now)
            self.batches_executed += 1
            self.batch_sizes.append(len(requests))
            if self._trace is not None:
                # The device is idle, so the fused graph starts now and its
                # duration is already known: the whole batch span can be
                # recorded at dispatch, with each member's padding share.
                from repro.trace import events as trace_events

                self._trace.span(
                    trace_events.BATCH,
                    trace_events.COMPUTE,
                    now,
                    duration,
                    device_id=device_id,
                    args={
                        "requests": [r.request_id for r in requests],
                        "padding": self._per_request_padding(requests, duration),
                        "batch": len(requests),
                    },
                )
            device.run_for(
                duration,
                on_complete=lambda reqs=requests, d=device_id: self._batch_done(
                    reqs, d
                ),
                tag=(self.name, len(requests)),
            )

    def _batch_done(self, requests: List[InferenceRequest], device_id: int) -> None:
        self._device_busy[device_id] = False
        for request in requests:
            self._finish_request(request)
        self._dispatch_idle_devices()

    def mean_batch_size(self) -> float:
        if not self.batch_sizes:
            return 0.0
        return sum(self.batch_sizes) / len(self.batch_sizes)

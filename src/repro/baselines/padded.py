"""Padding + bucketing graph-batching server (the MXNet/TensorFlow baseline).

Follows the serving policy the paper tuned for its baselines (§7.1):

* each request is assigned to a bucket by length; the bucket with width
  ``w`` holding requests of length in ``(i*w, (i+1)*w]`` pads them all to
  ``(i+1)*w`` steps (one dataflow graph is materialised per bucket, so the
  padded length is the bucket ceiling — "a request of length 21 will be
  padded to length 30", §7.3);
* buckets are served round-robin; a batch starts as soon as a device is
  idle and it is that bucket's turn, even if not full (no timeout), taking
  up to ``max_batch`` requests;
* every request in the batch occupies a batch slot for every padded step of
  every phase — that is the padding waste;
* all requests in the batch complete when the fused graph completes.

Multi-phase models (Seq2Seq) bucket on the tuple of per-phase ceilings and
pad each phase to its own ceiling.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Deque, List, Optional, Tuple

from repro.baselines.base import GraphBatchingServer
from repro.core.request import InferenceRequest
from repro.models.base import Model
from repro.server import ensure_loop
from repro.sim.events import EventLoop


class PaddedServer(GraphBatchingServer):
    """Graph batching via padding, with width-``bucket_width`` bucketing."""

    def __init__(
        self,
        model: Model,
        bucket_width: int = 10,
        max_batch: int = 512,
        num_gpus: int = 1,
        loop: Optional[EventLoop] = None,
        per_batch_overhead: float = 100e-6,
        per_step_overhead: float = 40e-6,
        name: Optional[str] = None,
    ):
        if bucket_width < 1:
            raise ValueError("bucket_width must be >= 1")
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        super().__init__(
            ensure_loop(loop),
            name if name is not None else f"Padded(bw={bucket_width})",
            model,
            num_gpus,
        )
        self.bucket_width = bucket_width
        self.max_batch = max_batch
        self.per_batch_overhead = per_batch_overhead
        # Frameworks dispatch one step's kernels after another inside the
        # fused graph; the residual launch/engine gap per unrolled step.
        self.per_step_overhead = per_step_overhead
        # bucket key -> FIFO of requests; insertion order gives the
        # round-robin ring over currently-known buckets.
        self._buckets: "OrderedDict[Tuple[int, ...], Deque[InferenceRequest]]" = (
            OrderedDict()
        )
        self._rr_ring: List[Tuple[int, ...]] = []
        self._rr_index = 0
        self._phase_names: Optional[List[str]] = None

    # -- bucketing ---------------------------------------------------------------

    def _ceil(self, steps: int) -> int:
        return ((steps + self.bucket_width - 1) // self.bucket_width) * self.bucket_width

    def bucket_key(self, payload) -> Tuple[int, ...]:
        """The padded step count of the *first* phase.

        Bucketing on the primary (input) length only matches how the tuned
        baselines behave for Seq2Seq: one materialised graph per source
        bucket, with the decoder sized when the batch is formed (a batch
        decodes until its longest member finishes).  For single-phase chain
        models this is simply the padded sequence length.
        """
        first_phase_steps = self.model.phases(payload)[0][1]
        return (self._ceil(first_phase_steps),)

    def _enqueue(self, request: InferenceRequest) -> None:
        phases = self.model.phases(request.payload)
        if self._phase_names is None:
            self._phase_names = [name for name, _ in phases]
        request.phase_steps = [steps for _, steps in phases]
        key = self.bucket_key(request.payload)
        if key not in self._buckets:
            self._buckets[key] = deque()
            self._rr_ring.append(key)
        self._buckets[key].append(request)

    # -- batch formation ------------------------------------------------------------

    def _next_batch(self) -> Optional[Tuple[List[InferenceRequest], float]]:
        if not self._rr_ring:
            return None
        n = len(self._rr_ring)
        for offset in range(n):
            key = self._rr_ring[(self._rr_index + offset) % n]
            queue = self._buckets[key]
            if queue:
                self._rr_index = (self._rr_index + offset + 1) % n
                batch = [
                    queue.popleft() for _ in range(min(self.max_batch, len(queue)))
                ]
                return batch, self._duration(key, batch)
        return None

    def _per_request_padding(self, requests, duration: float) -> List[float]:
        """Padding waste per batch member: for every phase, the steps
        computed beyond the request's own length, at that phase's per-step
        time.  Mirrors :meth:`_duration` (first phase pads to the bucket
        ceiling — equal to ``ceil(max)`` since the batch shares a bucket;
        later phases to the batch max's ceiling)."""
        pads = [0.0] * len(requests)
        for phase_idx, cell_name in enumerate(self._phase_names):
            padded_steps = self._ceil(
                max(r.phase_steps[phase_idx] for r in requests)
            )
            step_time = (
                self.cost_model.kernel_time(cell_name, len(requests))
                + self.per_step_overhead
            )
            for i, r in enumerate(requests):
                pads[i] += (padded_steps - r.phase_steps[phase_idx]) * step_time
        return pads

    def _duration(self, key: Tuple[int, ...], batch) -> float:
        """Fused-graph time at the full batch size: the first phase runs its
        bucket-ceiling step count; each later phase runs until the longest
        request in the batch finishes it (rounded up to the bucket width,
        since graphs are materialised at width granularity)."""
        total = self.per_batch_overhead
        for phase_idx, cell_name in enumerate(self._phase_names):
            if phase_idx == 0:
                padded_steps = key[0]
            else:
                padded_steps = self._ceil(
                    max(r.phase_steps[phase_idx] for r in batch)
                )
            total += padded_steps * (
                self.cost_model.kernel_time(cell_name, len(batch))
                + self.per_step_overhead
            )
        return total

"""Shared time utilities: one clock-accessor / conversion module.

Every component that reads or reports time — trace spans
(:mod:`repro.trace`), the offline profiler (:mod:`repro.core.profiler`),
latency metrics (:mod:`repro.metrics`), the Chrome exporter — goes through
these helpers, so "now", wall-clock measurement, and unit conversion are
defined exactly once.  All simulation timestamps are floats in **seconds**
(see :mod:`repro.sim.clock`); presentation layers convert at the edge.
"""

from __future__ import annotations

import time
from typing import Callable

SECONDS_TO_MS = 1e3
SECONDS_TO_US = 1e6


def seconds_to_ms(seconds: float) -> float:
    """Seconds -> milliseconds (how latency percentiles are reported)."""
    return SECONDS_TO_MS * seconds


def seconds_to_us(seconds: float) -> float:
    """Seconds -> microseconds (the Chrome trace-event ``ts``/``dur`` unit)."""
    return SECONDS_TO_US * seconds


def sim_now(source) -> float:
    """The current virtual time of a clock-bearing object.

    Accepts an :class:`~repro.sim.events.EventLoop`, a
    :class:`~repro.sim.clock.Clock`, or anything exposing ``now()``.  Trace
    spans, the profiler and the metrics layer all read time through this
    single accessor, so they can never disagree about the time source.
    """
    return source.now()


def measure_best(fn: Callable[[], object], repeats: int = 3) -> float:
    """Best-of-``repeats`` wall-clock duration of ``fn`` in seconds.

    The host-measurement primitive behind offline profiling: the minimum
    over repeats rejects scheduler noise, matching how the paper benchmarks
    per-batch kernel times offline.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best

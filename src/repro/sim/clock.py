"""Clock abstractions for the serving stack.

All timestamps in this project are floats measured in **seconds**.  The
simulation never mixes units: cost models internally reason in microseconds
but always return seconds.
"""

from __future__ import annotations

import time


class Clock:
    """Interface for time sources used by the serving stack."""

    def now(self) -> float:
        """Return the current time in seconds."""
        raise NotImplementedError

    def is_virtual(self) -> bool:
        """Whether this clock is advanced by the event loop (vs wall time)."""
        raise NotImplementedError


class VirtualClock(Clock):
    """A clock advanced explicitly by the event loop.

    Time only moves when :meth:`advance_to` is called, which the event loop
    does as it pops events.  Attempting to move time backwards is an error:
    it would indicate a scheduling bug (an event created in the past).
    """

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def is_virtual(self) -> bool:
        return True

    def advance_to(self, t: float) -> None:
        if t < self._now:
            raise ValueError(
                f"virtual clock cannot move backwards: {t} < {self._now}"
            )
        self._now = t


class RealTimeClock(Clock):
    """Wall-clock time, rebased so that construction time is t=0.

    The time source behind live serving (:mod:`repro.serve`): the same
    event-loop machinery that drives a :class:`VirtualClock` through
    simulated time runs over this clock in real time — events fire when
    the wall clock reaches them instead of the loop jumping to them.
    ``monotonic_offset`` exposes the rebasing epoch so an external timer
    wheel (asyncio) can convert loop timestamps to its own timebase.
    """

    def __init__(self):
        self._epoch = time.monotonic()

    def now(self) -> float:
        return time.monotonic() - self._epoch

    def is_virtual(self) -> bool:
        return False

    def monotonic_offset(self) -> float:
        """``time.monotonic()`` value at this clock's t=0."""
        return self._epoch


# Historical name (pre-repro.serve); RealTimeClock is the ROADMAP name.
RealClock = RealTimeClock

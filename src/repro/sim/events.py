"""A minimal deterministic event loop.

Events are ``(time, sequence, callback)`` triples kept in a binary heap.  The
sequence number breaks ties so that events scheduled at the same virtual time
fire in scheduling order, which makes every simulation run bit-reproducible
for a given seed.
"""

from __future__ import annotations

import heapq
import logging
from typing import Any, Callable, Optional

from repro.sim.clock import Clock, VirtualClock

logger = logging.getLogger(__name__)

# A timer firing later than this (seconds) after its scheduled time is
# logged by ``run_due`` — the live-serving drift guard (DESIGN.md §16).
DEFAULT_DRIFT_TOLERANCE = 1e-3


class Event:
    """A scheduled callback.  Cancel with :meth:`cancel`."""

    __slots__ = ("time", "seq", "callback", "cancelled", "fired", "_loop")

    def __init__(self, time: float, seq: int, callback: Callable[[], Any]):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.cancelled = False
        self.fired = False
        self._loop: Optional["EventLoop"] = None

    def cancel(self) -> bool:
        """Mark the event so the loop skips it when popped.

        Returns True when the cancellation took effect (the callback will
        never run), False when it was a no-op because the event already
        fired or was already cancelled.  The ``fired`` guard makes the
        exactly-once accounting explicit: cancelling an event mid-drain —
        including from a callback running at the same timestamp, or from
        the event's own callback — can never decrement ``pending()`` a
        second time, because only a live-in-heap event (``fired`` False,
        ``_loop`` set) carries a pending count to give back.
        """
        if self.cancelled or self.fired:
            return False
        self.cancelled = True
        if self._loop is not None:
            # Still sitting in the heap: it no longer counts as pending.
            self._loop._live -= 1
            self._loop = None
        return True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        return f"<Event t={self.time:.6f} seq={self.seq}{state}>"


class EventLoop:
    """Drives a :class:`~repro.sim.clock.Clock` through a heap of timed
    callbacks.

    The loop is single-threaded and re-entrant: callbacks may schedule new
    events (including at the current time) and they will run in order.

    Two execution modes, decided by the clock:

    * **Virtual** (the default :class:`VirtualClock`): :meth:`run` /
      :meth:`step` pop events and *advance* the clock to each event's
      time — the deterministic simulation mode every fingerprint suite
      pins down.
    * **Wall** (a non-virtual clock such as
      :class:`~repro.sim.clock.RealTimeClock`): time moves on its own;
      :meth:`run_due` fires exactly the events whose time has arrived and
      an external timer (asyncio in :mod:`repro.serve.bridge`) decides
      *when* to pump.  ``run``/``step`` refuse to run — they would fire
      future events early because a wall clock cannot be advanced.
    """

    def __init__(self, clock: Optional[Clock] = None):
        self.clock: Clock = clock if clock is not None else VirtualClock()
        self._virtual = self.clock.is_virtual()
        self._heap: list[Event] = []
        self._seq = 0
        self._running = False
        # Count of scheduled, not-yet-run, not-cancelled events; maintained
        # on push/pop/cancel so ``pending()`` is O(1) instead of a heap scan.
        self._live = 0
        # Wall-mode drift guard (see run_due): fires later than the
        # tolerance are logged and counted, so a saturated live server is
        # visible in the metrics instead of silently sloppy.
        self.drift_tolerance = DEFAULT_DRIFT_TOLERANCE
        self.late_fires = 0
        self.max_drift = 0.0

    # -- scheduling -------------------------------------------------------

    def call_at(self, when: float, callback: Callable[[], Any]) -> Event:
        """Schedule ``callback`` to run at absolute time ``when``.

        Under a virtual clock a past ``when`` is a scheduling bug and
        raises.  Under a wall clock it is routine — the clock moved while
        the caller computed ``when`` — so the event is clamped to now and
        fires on the next pump.
        """
        if when < self.clock.now():
            if self._virtual:
                raise ValueError(
                    f"cannot schedule event in the past: {when} < {self.clock.now()}"
                )
            when = self.clock.now()
        event = Event(when, self._seq, callback)
        event._loop = self
        self._seq += 1
        self._live += 1
        heapq.heappush(self._heap, event)
        return event

    def call_after(self, delay: float, callback: Callable[[], Any]) -> Event:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        return self.call_at(self.clock.now() + delay, callback)

    def call_soon(self, callback: Callable[[], Any]) -> Event:
        """Schedule ``callback`` at the current time (after pending same-time
        events that were scheduled earlier)."""
        return self.call_at(self.clock.now(), callback)

    # -- introspection ----------------------------------------------------

    def now(self) -> float:
        return self.clock.now()

    def pending(self) -> int:
        """Number of not-yet-cancelled events in the queue (O(1))."""
        return self._live

    def recount_pending(self) -> int:
        """Brute-force reference for ``pending()``: scan the heap.

        The chaos suite asserts ``pending() == recount_pending()`` after
        adversarial cancel/fire interleavings, so any future drift in the
        incremental counter is caught immediately."""
        return sum(1 for e in self._heap if not e.cancelled)

    def peek_time(self) -> Optional[float]:
        """Time of the next live event, or None if the queue is empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    # -- execution --------------------------------------------------------

    def step(self) -> bool:
        """Run the next event.  Returns False when the queue is empty."""
        if not self._virtual:
            raise RuntimeError(
                "step()/run() drive a virtual clock; under a wall clock "
                "use run_due() (see repro.serve.bridge.LiveEventLoop)"
            )
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue  # already discounted from _live at cancel time
            event.fired = True
            event._loop = None
            self._live -= 1
            self.clock.advance_to(event.time)
            event.callback()
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Run events until the queue drains, ``until`` is reached, or
        ``max_events`` have fired.  Returns the number of events executed.

        When ``until`` is given, the clock is advanced to exactly ``until``
        even if the last event fires earlier, so that metrics windows line
        up with the requested horizon.
        """
        if not self._virtual:
            raise RuntimeError(
                "step()/run() drive a virtual clock; under a wall clock "
                "use run_due() (see repro.serve.bridge.LiveEventLoop)"
            )
        if self._running:
            raise RuntimeError("event loop is already running")
        self._running = True
        executed = 0
        try:
            while True:
                if max_events is not None and executed >= max_events:
                    break
                next_time = self.peek_time()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    break
                self.step()
                executed += 1
        finally:
            self._running = False
        if until is not None and until > self.clock.now():
            self.clock.advance_to(until)
        return executed

    def run_due(self, max_events: Optional[int] = None) -> int:
        """Fire every event whose scheduled time has arrived (clock-agnostic).

        The wall-clock pump primitive: pops events with ``time <= now``
        without touching the clock, so it works under both clock kinds
        (under a virtual clock it only drains events at exactly the
        current time, i.e. the ``call_soon`` backlog).  Callbacks may
        schedule new events; ones that land due are drained in the same
        call.  Returns the number of events executed.

        Drift guard: an event firing more than ``drift_tolerance``
        seconds after its scheduled time increments ``late_fires``,
        raises ``max_drift`` and logs a warning — on a live server this
        is the signal that the asyncio timer wheel (or the Python work
        between timers) cannot keep up with real time.
        """
        executed = 0
        while self._heap:
            if max_events is not None and executed >= max_events:
                break
            head = self._heap[0]
            if head.cancelled:
                heapq.heappop(self._heap)
                continue
            now = self.clock.now()
            if head.time > now:
                break
            event = heapq.heappop(self._heap)
            event.fired = True
            event._loop = None
            self._live -= 1
            drift = now - event.time
            if drift > self.drift_tolerance:
                self.late_fires += 1
                if drift > self.max_drift:
                    self.max_drift = drift
                logger.warning(
                    "timer fired %.3f ms late (scheduled t=%.6f, now t=%.6f)",
                    1e3 * drift,
                    event.time,
                    now,
                )
            elif drift > self.max_drift:
                self.max_drift = drift
            event.callback()
            executed += 1
        return executed

"""Discrete-event simulation substrate.

The serving experiments in the paper run minutes of Poisson arrivals against
GPU kernels that take tens of microseconds to milliseconds.  Reproducing that
faithfully in wall-clock time would be both slow and non-deterministic, so
the whole serving stack (manager, scheduler, workers, load generator) is
written against an event loop with a virtual clock.  The same components can
also run against a real-time clock for live serving: :mod:`repro.serve`
pumps the identical event heap with ``EventLoop.run_due`` under asyncio
timers instead of advancing the clock.
"""

from repro.sim.clock import Clock, RealClock, RealTimeClock, VirtualClock
from repro.sim.events import Event, EventLoop

__all__ = [
    "Clock",
    "RealClock",
    "RealTimeClock",
    "VirtualClock",
    "Event",
    "EventLoop",
]
